//! The tracked simulator/assembler microbenchmark behind the `bench_sim`
//! binary.
//!
//! Measures the assemble→simulate back half of a job — uncached, no
//! engine — over every kernel on the two ends of the flow axis, and
//! renders the result as `BENCH_sim.json` so the repo carries a
//! comparable performance trajectory across PRs. Each job times three
//! things:
//!
//! * the **decoded fast path**: `DecodedProgram::decode` once, then the
//!   allocation-free cycle loop per iteration (simulated cycles/sec);
//! * the **reference simulator**: the pre-optimization implementation
//!   kept in `cmam_sim::reference`, re-measured on every run so the
//!   speedup column compares two numbers from the *same* machine and
//!   build, never a stale baseline;
//! * the **assembler**: `cmam_isa::assemble` per iteration (assembled
//!   blocks/sec);
//! * the **batched sweep**: [`BATCH_LANES`] seeded input images through
//!   `DecodedProgram::simulate_batch` (aggregate simulated cycles/sec —
//!   the throughput the input-sweep experiment runs at).
//!
//! The JSON is written by hand (the workspace is offline, no serde);
//! [`crate::mapper_bench::json`] parses it back in the schema tests.

use cmam_arch::CgraConfig;
use cmam_core::{FlowVariant, Mapper};
use cmam_sim::{simulate_reference, DecodedProgram, LaneState, SimOptions};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag of the emitted JSON; bump on any shape change.
pub const SCHEMA: &str = "cmam-bench-sim-v2";

/// Lanes per batched sweep — the smallest batch the >100M aggregate
/// cycles/s target is stated at.
pub const BATCH_LANES: usize = 256;

/// Root seed of the benchmark's input sets (lane `l` of kernel `k`
/// simulates `input_image(BATCH_SEED, l, ..)`).
pub const BATCH_SEED: u64 = 0xBA7C_5EED;

/// One measured (kernel, flow, config) combination.
#[derive(Debug, Clone)]
pub struct SimBenchJob {
    /// Kernel name.
    pub kernel: String,
    /// Flow variant label.
    pub variant: String,
    /// Target configuration name.
    pub config: String,
    /// Whether the job mapped, assembled and simulated successfully.
    pub ok: bool,
    /// Simulated cycles of one kernel execution (including stalls).
    pub sim_cycles: u64,
    /// Basic blocks assembled per `assemble` call.
    pub blocks: u64,
    /// One-time `DecodedProgram::decode` cost, in milliseconds.
    pub decode_ms: f64,
    /// Wall-clock of one decoded-path simulation, averaged, in ms.
    pub decoded_wall_ms: f64,
    /// Wall-clock of one reference simulation, averaged, in ms.
    pub reference_wall_ms: f64,
    /// Simulated cycles per second on the decoded fast path.
    pub decoded_cycles_per_sec: f64,
    /// Simulated cycles per second on the reference simulator.
    pub reference_cycles_per_sec: f64,
    /// `decoded_cycles_per_sec / reference_cycles_per_sec`.
    pub speedup: f64,
    /// Wall-clock of one `assemble` call, averaged, in ms.
    pub asm_wall_ms: f64,
    /// Basic blocks assembled per second.
    pub asm_blocks_per_sec: f64,
    /// Lanes per batched sweep ([`BATCH_LANES`] for jobs that ran).
    pub batch_lanes: u64,
    /// Aggregate simulated cycles of one sweep (all successful lanes).
    pub batch_agg_cycles: u64,
    /// Wall-clock of one batched sweep, averaged, in ms.
    pub batch_wall_ms: f64,
    /// Aggregate simulated cycles per second of the batched sweep.
    pub batch_agg_cycles_per_sec: f64,
    /// `batch_agg_cycles_per_sec / decoded_cycles_per_sec` — what
    /// batching buys over solo fast-path calls on the same build.
    pub batch_speedup: f64,
}

/// One whole benchmark run.
#[derive(Debug, Clone)]
pub struct SimBenchReport {
    /// Simulation calls per combination (assembly runs the same count).
    pub iterations: u32,
    /// Batched-sweep calls per combination (each sweep simulates
    /// [`BATCH_LANES`] lanes, so this is kept smaller than `iterations`).
    pub batch_iterations: u32,
    /// Per-combination measurements.
    pub jobs: Vec<SimBenchJob>,
}

impl SimBenchReport {
    fn total_cycles_per_sec(&self, wall_of: impl Fn(&SimBenchJob) -> f64) -> f64 {
        let (cycles, secs) = self
            .jobs
            .iter()
            .filter(|j| j.ok)
            .fold((0u64, 0f64), |(c, s), j| {
                (c + j.sim_cycles, s + wall_of(j) / 1e3)
            });
        if secs > 0.0 {
            cycles as f64 / secs
        } else {
            0.0
        }
    }

    /// Total simulated cycles/sec on the decoded fast path (one
    /// execution of every successful job).
    pub fn total_decoded_cycles_per_sec(&self) -> f64 {
        self.total_cycles_per_sec(|j| j.decoded_wall_ms)
    }

    /// Total simulated cycles/sec on the reference simulator.
    pub fn total_reference_cycles_per_sec(&self) -> f64 {
        self.total_cycles_per_sec(|j| j.reference_wall_ms)
    }

    /// Whole-suite speedup of the decoded path over the reference.
    pub fn total_speedup(&self) -> f64 {
        let r = self.total_reference_cycles_per_sec();
        if r > 0.0 {
            self.total_decoded_cycles_per_sec() / r
        } else {
            0.0
        }
    }

    /// Total aggregate cycles/sec of the batched sweeps (one sweep of
    /// every successful job).
    pub fn total_batch_agg_cycles_per_sec(&self) -> f64 {
        let (cycles, secs) = self
            .jobs
            .iter()
            .filter(|j| j.ok)
            .fold((0u64, 0f64), |(c, s), j| {
                (c + j.batch_agg_cycles, s + j.batch_wall_ms / 1e3)
            });
        if secs > 0.0 {
            cycles as f64 / secs
        } else {
            0.0
        }
    }

    /// Whole-suite speedup of batched sweeps over solo decoded calls.
    pub fn total_batch_speedup(&self) -> f64 {
        let solo = self.total_decoded_cycles_per_sec();
        if solo > 0.0 {
            self.total_batch_agg_cycles_per_sec() / solo
        } else {
            0.0
        }
    }

    /// Total assembled blocks/sec over all successful jobs.
    pub fn total_asm_blocks_per_sec(&self) -> f64 {
        let (blocks, secs) = self
            .jobs
            .iter()
            .filter(|j| j.ok)
            .fold((0u64, 0f64), |(b, s), j| {
                (b + j.blocks, s + j.asm_wall_ms / 1e3)
            });
        if secs > 0.0 {
            blocks as f64 / secs
        } else {
            0.0
        }
    }
}

/// The benchmark matrix: the basic flow on the unconstrained target plus
/// the full aware flow on a constrained one — same two ends of the flow
/// axis as `bench_mapper`.
pub fn bench_matrix() -> Vec<(FlowVariant, CgraConfig)> {
    vec![
        (FlowVariant::Basic, CgraConfig::hom64()),
        (FlowVariant::Cab, CgraConfig::het1()),
    ]
}

/// Runs the benchmark: for every kernel × [`bench_matrix`] combination,
/// maps once (untimed), then times `iterations` calls of the assembler,
/// the reference simulator and the decoded simulator. `extra` kernels
/// (e.g. generated ones via `--generated N`) are appended after the seven
/// paper kernels.
pub fn run(iterations: u32, extra: &[cmam_kernels::KernelSpec]) -> SimBenchReport {
    assert!(iterations > 0, "at least one iteration");
    // Each batched sweep simulates BATCH_LANES whole kernel executions,
    // so fewer sweep iterations give the same measurement weight.
    let batch_iterations = (iterations / 10).max(2);
    let mut specs = cmam_kernels::all();
    specs.extend(extra.iter().cloned());
    let mut jobs = Vec::new();
    for spec in &specs {
        for (variant, config) in bench_matrix() {
            let mut job = SimBenchJob {
                kernel: spec.name.to_owned(),
                variant: variant.to_string(),
                config: config.name().to_owned(),
                ok: false,
                sim_cycles: 0,
                blocks: 0,
                decode_ms: 0.0,
                decoded_wall_ms: 0.0,
                reference_wall_ms: 0.0,
                decoded_cycles_per_sec: 0.0,
                reference_cycles_per_sec: 0.0,
                speedup: 0.0,
                asm_wall_ms: 0.0,
                asm_blocks_per_sec: 0.0,
                batch_lanes: 0,
                batch_agg_cycles: 0,
                batch_wall_ms: 0.0,
                batch_agg_cycles_per_sec: 0.0,
                batch_speedup: 0.0,
            };
            let mapper = Mapper::new(variant.options());
            let Ok(result) = mapper.map(&spec.cdfg, &config) else {
                jobs.push(job);
                continue;
            };
            let Ok((binary, _)) = cmam_isa::assemble(&spec.cdfg, &result.mapping, &config) else {
                jobs.push(job);
                continue;
            };

            // Assembler throughput.
            let t0 = Instant::now();
            for _ in 0..iterations {
                let asm = cmam_isa::assemble(&spec.cdfg, &result.mapping, &config);
                std::hint::black_box(asm.is_ok());
            }
            let asm_wall_s = t0.elapsed().as_secs_f64() / iterations as f64;
            job.blocks = result.mapping.blocks.len() as u64;

            // One-time decode, then the fast cycle loop.
            let t0 = Instant::now();
            let decoded = DecodedProgram::decode(&binary, &config).expect("valid binary");
            let decode_s = t0.elapsed().as_secs_f64();
            let options = SimOptions::default();
            let mut mem = vec![0i32; spec.mem.len()];
            let mut decoded_cycles = 0u64;
            let t0 = Instant::now();
            for _ in 0..iterations {
                mem.copy_from_slice(&spec.mem);
                let stats = decoded.simulate(&mut mem, options).expect("simulates");
                decoded_cycles = stats.cycles;
            }
            let decoded_wall_s = t0.elapsed().as_secs_f64() / iterations as f64;

            // The reference interpretation of the same binary.
            let mut reference_cycles = 0u64;
            let t0 = Instant::now();
            for _ in 0..iterations {
                mem.copy_from_slice(&spec.mem);
                let stats =
                    simulate_reference(&binary, &config, &mut mem, options).expect("simulates");
                reference_cycles = stats.cycles;
            }
            let reference_wall_s = t0.elapsed().as_secs_f64() / iterations as f64;
            assert_eq!(
                decoded_cycles, reference_cycles,
                "decoded and reference simulators disagree on {}",
                spec.name
            );

            job.ok = true;
            job.sim_cycles = decoded_cycles;
            job.decode_ms = decode_s * 1e3;
            job.decoded_wall_ms = decoded_wall_s * 1e3;
            job.reference_wall_ms = reference_wall_s * 1e3;
            job.decoded_cycles_per_sec = if decoded_wall_s > 0.0 {
                decoded_cycles as f64 / decoded_wall_s
            } else {
                0.0
            };
            job.reference_cycles_per_sec = if reference_wall_s > 0.0 {
                reference_cycles as f64 / reference_wall_s
            } else {
                0.0
            };
            job.speedup = if job.reference_cycles_per_sec > 0.0 {
                job.decoded_cycles_per_sec / job.reference_cycles_per_sec
            } else {
                0.0
            };
            job.asm_wall_ms = asm_wall_s * 1e3;
            job.asm_blocks_per_sec = if asm_wall_s > 0.0 {
                job.blocks as f64 / asm_wall_s
            } else {
                0.0
            };

            // The batched sweep: BATCH_LANES seeded images through one
            // simulate_batch call. Lane memories are reset (not
            // reallocated) between iterations, mirroring the solo loop.
            let images = cmam_kernels::lane_images(spec, BATCH_SEED, BATCH_LANES);
            let mut lanes: Vec<LaneState> =
                images.iter().map(|m| LaneState::new(m.clone())).collect();
            let mut batch_agg_cycles = 0u64;
            let t0 = Instant::now();
            for _ in 0..batch_iterations {
                for (lane, image) in lanes.iter_mut().zip(&images) {
                    lane.mem.copy_from_slice(image);
                }
                let results = decoded.simulate_batch(&mut lanes, options);
                batch_agg_cycles = results
                    .iter()
                    .filter_map(|r| r.as_ref().ok().map(|s| s.cycles))
                    .sum();
            }
            let batch_wall_s = t0.elapsed().as_secs_f64() / batch_iterations as f64;
            job.batch_lanes = BATCH_LANES as u64;
            job.batch_agg_cycles = batch_agg_cycles;
            job.batch_wall_ms = batch_wall_s * 1e3;
            job.batch_agg_cycles_per_sec = if batch_wall_s > 0.0 {
                batch_agg_cycles as f64 / batch_wall_s
            } else {
                0.0
            };
            job.batch_speedup = if job.decoded_cycles_per_sec > 0.0 {
                job.batch_agg_cycles_per_sec / job.decoded_cycles_per_sec
            } else {
                0.0
            };
            jobs.push(job);
        }
    }
    SimBenchReport {
        iterations,
        batch_iterations,
        jobs,
    }
}

fn json_f64(v: f64) -> String {
    // JSON has no NaN/Infinity; clamp to 0 (a job that never ran).
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_owned()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a run as the `BENCH_sim.json` document.
pub fn render_json(report: &SimBenchReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {},", json_str(SCHEMA));
    let _ = writeln!(s, "  \"iterations\": {},", report.iterations);
    let _ = writeln!(s, "  \"batch_iterations\": {},", report.batch_iterations);
    s.push_str("  \"jobs\": [\n");
    for (i, j) in report.jobs.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": {}, \"variant\": {}, \"config\": {}, \"ok\": {}, \
             \"sim_cycles\": {}, \"blocks\": {}, \"decode_ms\": {}, \
             \"decoded_wall_ms\": {}, \"reference_wall_ms\": {}, \
             \"decoded_cycles_per_sec\": {}, \"reference_cycles_per_sec\": {}, \
             \"speedup\": {}, \"asm_wall_ms\": {}, \"asm_blocks_per_sec\": {}, \
             \"batch_lanes\": {}, \"batch_agg_cycles\": {}, \"batch_wall_ms\": {}, \
             \"batch_agg_cycles_per_sec\": {}, \"batch_speedup\": {}}}",
            json_str(&j.kernel),
            json_str(&j.variant),
            json_str(&j.config),
            j.ok,
            j.sim_cycles,
            j.blocks,
            json_f64(j.decode_ms),
            json_f64(j.decoded_wall_ms),
            json_f64(j.reference_wall_ms),
            json_f64(j.decoded_cycles_per_sec),
            json_f64(j.reference_cycles_per_sec),
            json_f64(j.speedup),
            json_f64(j.asm_wall_ms),
            json_f64(j.asm_blocks_per_sec),
            j.batch_lanes,
            j.batch_agg_cycles,
            json_f64(j.batch_wall_ms),
            json_f64(j.batch_agg_cycles_per_sec),
            json_f64(j.batch_speedup),
        );
        s.push_str(if i + 1 < report.jobs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"totals\": {\n");
    let _ = writeln!(
        s,
        "    \"decoded_cycles_per_sec\": {},",
        json_f64(report.total_decoded_cycles_per_sec())
    );
    let _ = writeln!(
        s,
        "    \"reference_cycles_per_sec\": {},",
        json_f64(report.total_reference_cycles_per_sec())
    );
    let _ = writeln!(s, "    \"speedup\": {},", json_f64(report.total_speedup()));
    let _ = writeln!(
        s,
        "    \"asm_blocks_per_sec\": {},",
        json_f64(report.total_asm_blocks_per_sec())
    );
    let _ = writeln!(
        s,
        "    \"batch_agg_cycles_per_sec\": {},",
        json_f64(report.total_batch_agg_cycles_per_sec())
    );
    let _ = writeln!(
        s,
        "    \"batch_speedup\": {}",
        json_f64(report.total_batch_speedup())
    );
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Compares a freshly rendered `BENCH_sim.json` against a committed
/// baseline document: both `totals.decoded_cycles_per_sec` (solo fast
/// path) and `totals.batch_agg_cycles_per_sec` (batched sweeps) must be
/// at least `min_ratio` of the baseline's. This is CI's simulator
/// regression gate. Returns a human-readable verdict line on success.
pub fn check_against_baseline(
    current: &str,
    baseline: &str,
    min_ratio: f64,
) -> Result<String, String> {
    use crate::mapper_bench::json;
    fn total(doc: &str, what: &str, key: &str) -> Result<f64, String> {
        let doc = json::parse(doc).map_err(|e| format!("{what}: not valid JSON: {e}"))?;
        let schema = doc.get("schema").and_then(json::Value::as_str);
        if schema != Some(SCHEMA) {
            return Err(format!("{what}: schema {schema:?}, want {SCHEMA:?}"));
        }
        doc.get("totals")
            .and_then(|t| t.get(key))
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{what}: no totals.{key}"))
    }
    let mut verdicts = Vec::new();
    for key in ["decoded_cycles_per_sec", "batch_agg_cycles_per_sec"] {
        let cur = total(current, "current", key)?;
        let base = total(baseline, "baseline", key)?;
        if base <= 0.0 {
            return Err(format!("baseline {key} is {base}"));
        }
        let ratio = cur / base;
        if ratio < min_ratio {
            return Err(format!(
                "{key} regressed: {cur:.0} cycles/s vs baseline {base:.0} \
                 (ratio {ratio:.3} < required {min_ratio})"
            ));
        }
        verdicts.push(format!("{key} ratio {ratio:.3}"));
    }
    Ok(format!("ok: {} (>= {min_ratio})", verdicts.join(", ")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper_bench::json;

    fn sample() -> SimBenchReport {
        SimBenchReport {
            iterations: 3,
            batch_iterations: 2,
            jobs: vec![
                SimBenchJob {
                    kernel: "fir".into(),
                    variant: "basic".into(),
                    config: "HOM64".into(),
                    ok: true,
                    sim_cycles: 1000,
                    blocks: 3,
                    decode_ms: 0.01,
                    decoded_wall_ms: 0.1,
                    reference_wall_ms: 1.0,
                    decoded_cycles_per_sec: 10_000_000.0,
                    reference_cycles_per_sec: 1_000_000.0,
                    speedup: 10.0,
                    asm_wall_ms: 0.5,
                    asm_blocks_per_sec: 6000.0,
                    batch_lanes: 64,
                    // 64 lanes x 1000 cycles in 2 ms -> 32M agg/s, 3.2x
                    // the solo decoded rate.
                    batch_agg_cycles: 64_000,
                    batch_wall_ms: 2.0,
                    batch_agg_cycles_per_sec: 32_000_000.0,
                    batch_speedup: 3.2,
                },
                SimBenchJob {
                    kernel: "fft".into(),
                    variant: "basic+ACMAP+ECMAP+CAB".into(),
                    config: "HET1".into(),
                    ok: false,
                    sim_cycles: 0,
                    blocks: 0,
                    decode_ms: 0.0,
                    decoded_wall_ms: 0.0,
                    reference_wall_ms: 0.0,
                    decoded_cycles_per_sec: 0.0,
                    reference_cycles_per_sec: 0.0,
                    speedup: 0.0,
                    asm_wall_ms: 0.0,
                    asm_blocks_per_sec: 0.0,
                    batch_lanes: 0,
                    batch_agg_cycles: 0,
                    batch_wall_ms: 0.0,
                    batch_agg_cycles_per_sec: 0.0,
                    batch_speedup: 0.0,
                },
            ],
        }
    }

    #[test]
    fn json_schema_has_all_required_fields() {
        let doc = json::parse(&render_json(&sample())).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some(SCHEMA)
        );
        assert_eq!(
            doc.get("iterations").and_then(json::Value::as_f64),
            Some(3.0)
        );
        let jobs = doc.get("jobs").and_then(json::Value::as_arr).expect("jobs");
        assert_eq!(jobs.len(), 2);
        for job in jobs {
            for key in [
                "kernel",
                "variant",
                "config",
                "ok",
                "sim_cycles",
                "blocks",
                "decode_ms",
                "decoded_wall_ms",
                "reference_wall_ms",
                "decoded_cycles_per_sec",
                "reference_cycles_per_sec",
                "speedup",
                "asm_wall_ms",
                "asm_blocks_per_sec",
                "batch_lanes",
                "batch_agg_cycles",
                "batch_wall_ms",
                "batch_agg_cycles_per_sec",
                "batch_speedup",
            ] {
                assert!(job.get(key).is_some(), "job missing {key}");
            }
        }
        let totals = doc.get("totals").expect("totals");
        for key in [
            "decoded_cycles_per_sec",
            "reference_cycles_per_sec",
            "speedup",
            "asm_blocks_per_sec",
            "batch_agg_cycles_per_sec",
            "batch_speedup",
        ] {
            assert!(totals.get(key).is_some(), "totals missing {key}");
        }
        assert_eq!(
            doc.get("batch_iterations").and_then(json::Value::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn totals_aggregate_only_successful_jobs() {
        let r = sample();
        // 1000 cycles in 0.1 ms -> 10M/s decoded, 1M/s reference; the
        // failed job contributes nothing (it must not dilute the
        // tracked speedup).
        assert!((r.total_decoded_cycles_per_sec() - 10_000_000.0).abs() < 1.0);
        assert!((r.total_reference_cycles_per_sec() - 1_000_000.0).abs() < 1.0);
        assert!((r.total_speedup() - 10.0).abs() < 1e-9);
        assert!((r.total_asm_blocks_per_sec() - 6000.0).abs() < 1.0);
        // 64k aggregate cycles in 2 ms -> 32M agg/s, 3.2x the solo rate.
        assert!((r.total_batch_agg_cycles_per_sec() - 32_000_000.0).abs() < 1.0);
        assert!((r.total_batch_speedup() - 3.2).abs() < 1e-9);
    }

    #[test]
    fn baseline_gate_compares_solo_and_batch_rates() {
        let current = render_json(&sample());
        assert!(check_against_baseline(&current, &current, 0.9).is_ok());
        // A faster baseline in either rate trips the gate at the same
        // min-ratio; a permissive ratio lets it pass.
        let mut fast = sample();
        fast.jobs[0].decoded_wall_ms /= 3.0;
        let baseline = render_json(&fast);
        assert!(check_against_baseline(&current, &baseline, 0.9).is_err());
        assert!(check_against_baseline(&current, &baseline, 0.2).is_ok());
        let mut fast_batch = sample();
        fast_batch.jobs[0].batch_wall_ms /= 3.0;
        let baseline = render_json(&fast_batch);
        assert!(check_against_baseline(&current, &baseline, 0.9).is_err());
        assert!(check_against_baseline(&current, &baseline, 0.2).is_ok());
        // Malformed documents are errors, not passes.
        assert!(check_against_baseline("{}", &current, 0.5).is_err());
        assert!(check_against_baseline(&current, "not json", 0.5).is_err());
    }

    #[test]
    fn empty_and_all_failed_runs_render_zero_totals() {
        let mut r = sample();
        r.jobs[0].ok = false;
        assert_eq!(r.total_decoded_cycles_per_sec(), 0.0);
        assert_eq!(r.total_speedup(), 0.0);
        let doc = json::parse(&render_json(&r)).expect("still valid JSON");
        assert!(doc.get("totals").is_some());
    }
}
