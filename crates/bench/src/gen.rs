//! Shared CLI plumbing for generated workloads.
//!
//! Every experiment binary understands `--generated N --seed S` through
//! [`GenCli::from_args`]: `N` extra kernels are derived from root seed `S`
//! (profiles cycling through [`GenParams::PROFILES`], per-kernel seeds
//! from [`cmam_kernels::kernel_seeds`]) and appended to the seven
//! hand-written kernels. With no flags, [`GenCli::specs`] is empty and
//! every binary's default output is byte-identical to before the flags
//! existed (CI relies on that for the smoke-twice diff).

use cmam_cdfg::generate::GenParams;
use cmam_kernels::{generated_spec, kernel_seeds, KernelSpec};

/// Root seed used when `--generated N` is given without `--seed`. Also the
/// fixed seed of the CI `gen_suite` block.
pub const DEFAULT_GEN_SEED: u64 = 0xDA5_2019; // Das et al., DATE 2019

/// Parsed `--generated N [--seed S] [--profile P]` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenCli {
    /// Number of generated kernels requested (0 when the flag is absent).
    pub generated: usize,
    /// Root seed (decimal or `0x…` hex).
    pub seed: u64,
    /// Profile name, or "mixed" to cycle through all profiles.
    pub profile: String,
}

impl Default for GenCli {
    fn default() -> Self {
        GenCli {
            generated: 0,
            seed: DEFAULT_GEN_SEED,
            profile: "mixed".to_owned(),
        }
    }
}

/// Parses `s` as decimal or `0x…`/`0X…` hexadecimal.
pub fn parse_u64(s: &str) -> Result<u64, String> {
    let r = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| format!("not a number: {s}"))
}

impl GenCli {
    /// Reads the flags from an argument list (typically
    /// `std::env::args().skip(1)`). Unknown arguments are ignored — each
    /// binary parses its own flags from the same list.
    ///
    /// # Errors
    ///
    /// Returns a message when a flag is present without a value or with an
    /// unparsable one.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<GenCli, String> {
        let mut cli = GenCli::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let mut take = |name: &str| it.next().ok_or(format!("{name} needs a value"));
            match a.as_str() {
                "--generated" => {
                    cli.generated = take("--generated")?
                        .parse()
                        .map_err(|e| format!("--generated: {e}"))?;
                }
                "--seed" => cli.seed = parse_u64(&take("--seed")?)?,
                "--profile" => {
                    let p = take("--profile")?;
                    if p != "mixed" && GenParams::profile(&p).is_none() {
                        return Err(format!(
                            "unknown profile {p}; known: mixed, {}",
                            GenParams::PROFILES.join(", ")
                        ));
                    }
                    cli.profile = p;
                }
                _ => {}
            }
        }
        Ok(cli)
    }

    /// [`GenCli::parse`] over the process arguments, exiting with the
    /// error message on a bad flag.
    pub fn from_args() -> GenCli {
        GenCli::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("gen: {e}");
            std::process::exit(2);
        })
    }

    /// The parameter profile for the `k`-th kernel of this run.
    pub fn params_for(&self, k: usize) -> GenParams {
        if self.profile == "mixed" {
            let name = GenParams::PROFILES[k % GenParams::PROFILES.len()];
            GenParams::profile(name).expect("known profile")
        } else {
            GenParams::profile(&self.profile).expect("validated at parse time")
        }
    }

    /// The generated kernels these flags ask for (empty without
    /// `--generated`).
    pub fn specs(&self) -> Vec<KernelSpec> {
        let seeds = kernel_seeds(self.seed, self.generated);
        seeds
            .iter()
            .enumerate()
            .map(|(k, &s)| generated_spec(&self.params_for(k), s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn absent_flags_mean_no_generated_kernels() {
        let cli = GenCli::parse(argv(&["--jobs", "4", "--csv"])).unwrap();
        assert_eq!(cli, GenCli::default());
        assert!(cli.specs().is_empty());
    }

    #[test]
    fn flags_parse_decimal_and_hex() {
        let cli = GenCli::parse(argv(&["--generated", "3", "--seed", "0xBEEF"])).unwrap();
        assert_eq!(cli.generated, 3);
        assert_eq!(cli.seed, 0xBEEF);
        let cli = GenCli::parse(argv(&["--seed", "12345"])).unwrap();
        assert_eq!(cli.seed, 12345);
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(GenCli::parse(argv(&["--seed"])).is_err());
        assert!(GenCli::parse(argv(&["--seed", "zap"])).is_err());
        assert!(GenCli::parse(argv(&["--generated", "-1"])).is_err());
        assert!(GenCli::parse(argv(&["--profile", "nope"])).is_err());
    }

    #[test]
    fn specs_are_deterministic_and_named_by_seed() {
        let cli = GenCli::parse(argv(&["--generated", "2", "--seed", "7"])).unwrap();
        let a = cli.specs();
        let b = cli.specs();
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.cdfg, y.cdfg);
            assert_eq!(x.mem, y.mem);
        }
        assert!(a[0].name.starts_with("gen-default-"));
        assert!(a[1].name.starts_with("gen-memory_bound-"));
    }

    #[test]
    fn fixed_profile_applies_to_every_kernel() {
        let cli = GenCli::parse(argv(&["--generated", "3", "--profile", "deep"])).unwrap();
        for spec in cli.specs() {
            assert!(spec.name.starts_with("gen-deep-"), "{}", spec.name);
        }
    }
}
