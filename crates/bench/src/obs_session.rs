//! Per-binary observability plumbing: the `--trace-out` / `--metrics`
//! flags and the end-of-run summary every experiment binary prints.
//!
//! Usage, first line of `main`:
//!
//! ```no_run
//! let _obs = cmam_bench::obs_session("smoke");
//! ```
//!
//! The returned guard parses the process arguments once; on drop (end of
//! `main`) it emits, **to stderr** (stdout stays byte-identical for the
//! CI determinism diffs):
//!
//! * the one-line engine cache summary — submitted / dedup / memory hits
//!   / disk hits / executed (misses), tagged `cold`, `warm` or `mixed`
//!   so a first run is distinguishable from a cached re-run at a glance;
//! * with `--metrics` (or [`ObsSession::with_metrics`], the default for
//!   `smoke`, `dse_pareto` and `gen_suite`): a `METRICS` block holding
//!   the [`cmam_obs::metrics::metrics_json`] dump;
//! * with `--trace-out FILE`: the recorded Chrome trace, written to
//!   `FILE` (tracing is force-enabled for the run; `CMAM_TRACE=1`
//!   enables recording without choosing a file).

use std::path::PathBuf;

/// Guard returned by [`obs_session`]; emits the observability outputs on
/// drop.
#[must_use = "the session reports when dropped at the end of main"]
pub struct ObsSession {
    name: &'static str,
    trace_out: Option<PathBuf>,
    metrics: bool,
}

/// Parses `--trace-out FILE` (or `--trace-out=FILE`) and `--metrics`
/// from the process arguments and returns the session guard. When a
/// trace file was requested, span recording is enabled immediately.
pub fn obs_session(name: &'static str) -> ObsSession {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_out = None;
    let mut metrics = false;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--metrics" {
            metrics = true;
        } else if args[i] == "--trace-out" {
            match args.get(i + 1) {
                Some(path) => {
                    trace_out = Some(PathBuf::from(path));
                    i += 1;
                }
                None => cmam_obs::warn!("--trace-out expects a file path; tracing disabled"),
            }
        } else if let Some(path) = args[i].strip_prefix("--trace-out=") {
            trace_out = Some(PathBuf::from(path));
        }
        i += 1;
    }
    if trace_out.is_some() {
        cmam_obs::enable_tracing();
    }
    ObsSession {
        name,
        trace_out,
        metrics,
    }
}

impl ObsSession {
    /// Always print the `METRICS` block, even without `--metrics` — the
    /// default for the machine-read binaries (`smoke`, `dse_pareto`,
    /// `gen_suite`).
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// The engine cache summary line, or `None` when no engine ran.
    fn cache_summary(&self) -> Option<String> {
        let stats = crate::engine_if_started()?.stats();
        let temperature = temperature(&stats);
        Some(format!(
            "{}: engine cache: {} submitted, {} dedup, {} mem hits, {} disk hits, \
             {} executed ({temperature})",
            self.name,
            stats.submitted,
            stats.deduped,
            stats.memory_hits,
            stats.disk_hits,
            stats.executed,
        ))
    }

    /// The recovery summary line — only when something actually needed
    /// recovering (faults fired, retries happened, jobs were quarantined
    /// or artifacts healed), so ordinary runs stay quiet.
    fn recovery_summary(&self) -> Option<String> {
        let counter = |name| cmam_obs::metrics::registry().counter(name).get();
        let fired = counter("fault.fired");
        let retries = counter("engine.retries");
        let quarantined = counter("engine.quarantined");
        let healed = counter("engine.cache.corrupt_healed");
        let swept = counter("engine.cache.orphans_swept");
        if fired + retries + quarantined + healed + swept == 0 {
            return None;
        }
        Some(format!(
            "{}: engine recovery: {fired} faults injected, {retries} retries, \
             {quarantined} quarantined, {healed} artifacts healed, {swept} orphans swept",
            self.name,
        ))
    }
}

/// Classifies a run by its cache outcome: `cold` (everything executed),
/// `warm` (everything answered from a cache), `mixed`, or `idle` (no
/// submissions at all).
fn temperature(stats: &cmam_engine::EngineStats) -> &'static str {
    if stats.submitted == 0 {
        "idle"
    } else if stats.executed == 0 {
        "warm"
    } else if stats.memory_hits + stats.disk_hits == 0 {
        "cold"
    } else {
        "mixed"
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        if let Some(line) = self.cache_summary() {
            eprintln!("{line}");
        }
        if let Some(line) = self.recovery_summary() {
            eprintln!("{line}");
        }
        if self.metrics {
            eprint!("METRICS {}", cmam_obs::metrics::metrics_json());
        }
        if let Some(path) = &self.trace_out {
            match cmam_obs::write_chrome_trace(path) {
                Ok(()) => eprintln!(
                    "{}: trace written to {} ({} events recorded)",
                    self.name,
                    path.display(),
                    cmam_obs::trace::events_recorded()
                ),
                Err(e) => cmam_obs::warn!("could not write {}: {e}", path.display()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmam_engine::EngineStats;

    #[test]
    fn temperature_distinguishes_cold_warm_mixed() {
        let stats = |submitted, memory_hits, disk_hits, executed| EngineStats {
            submitted,
            memory_hits,
            disk_hits,
            executed,
            ..EngineStats::default()
        };
        assert_eq!(temperature(&stats(0, 0, 0, 0)), "idle");
        assert_eq!(temperature(&stats(10, 0, 0, 10)), "cold");
        assert_eq!(temperature(&stats(10, 4, 6, 0)), "warm");
        assert_eq!(temperature(&stats(10, 0, 6, 4)), "mixed");
    }
}
