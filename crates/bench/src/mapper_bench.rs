//! The tracked mapper microbenchmark behind the `bench_mapper` binary.
//!
//! Measures the raw `Mapper::map` hot loop — uncached, no assembly or
//! simulation — over every kernel, once per configured thread count
//! (`--threads`), and renders the result as `BENCH_mapper.json` so the
//! repo carries a comparable performance trajectory across PRs. The
//! default records a sequential run (`threads = 1`) and a parallel run
//! (all hardware threads) side by side, pinning both the hot loop's raw
//! speed and the beam parallelism's scaling. The JSON is written by hand
//! (the workspace is offline, no serde); [`json`] provides the minimal
//! parser the schema unit tests validate against.

use cmam_arch::CgraConfig;
use cmam_core::{FlowVariant, Mapper};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag of the emitted JSON; bump on any shape change.
///
/// v2: the document carries a `runs` array (one entry per measured
/// mapper thread count, each with its own `threads`, `jobs` and
/// `totals`) instead of a single flat job list.
pub const SCHEMA: &str = "cmam-bench-mapper-v2";

/// One measured (kernel, flow, config) combination.
#[derive(Debug, Clone)]
pub struct MapperBenchJob {
    /// Kernel name.
    pub kernel: String,
    /// Flow variant label.
    pub variant: String,
    /// Target configuration name.
    pub config: String,
    /// Whether every iteration produced a mapping.
    pub ok: bool,
    /// CDFG operation count (`Σ n(Vo)` — what "mapped ops" counts).
    pub ops: u64,
    /// Wall-clock of one `Mapper::map`, averaged over the iterations, in
    /// milliseconds.
    pub wall_ms: f64,
    /// CDFG ops mapped per second of mapper wall-clock.
    pub ops_per_sec: f64,
    /// Candidate bindings generated per second.
    pub candidates_per_sec: f64,
    /// Peak candidate-pool size during the search.
    pub peak_population: u64,
    /// Candidate deltas rolled back during the search.
    pub rollbacks: u64,
}

/// One whole benchmark run at a fixed mapper thread count.
#[derive(Debug, Clone)]
pub struct MapperBenchReport {
    /// `Mapper::map` calls per combination.
    pub iterations: u32,
    /// Mapper threads (`MapperOptions::threads`) every job ran with.
    pub threads: usize,
    /// Per-combination measurements.
    pub jobs: Vec<MapperBenchJob>,
}

impl MapperBenchReport {
    /// Total CDFG ops mapped per second over all successful jobs.
    pub fn total_ops_per_sec(&self) -> f64 {
        let (ops, secs) = self
            .jobs
            .iter()
            .filter(|j| j.ok)
            .fold((0u64, 0f64), |(o, s), j| (o + j.ops, s + j.wall_ms / 1e3));
        if secs > 0.0 {
            ops as f64 / secs
        } else {
            0.0
        }
    }

    /// Total candidate bindings generated per second over all jobs.
    pub fn total_candidates_per_sec(&self) -> f64 {
        let secs: f64 = self.jobs.iter().map(|j| j.wall_ms / 1e3).sum();
        let cands: f64 = self
            .jobs
            .iter()
            .map(|j| j.candidates_per_sec * j.wall_ms / 1e3)
            .sum();
        if secs > 0.0 {
            cands / secs
        } else {
            0.0
        }
    }

    /// Total wall-clock in milliseconds (one iteration of every job).
    pub fn total_wall_ms(&self) -> f64 {
        self.jobs.iter().map(|j| j.wall_ms).sum()
    }
}

/// The benchmark matrix: the basic flow on the unconstrained target plus
/// the full aware flow on a constrained one — the two ends of the Fig 9
/// compile-effort axis.
pub fn bench_matrix() -> Vec<(FlowVariant, CgraConfig)> {
    vec![
        (FlowVariant::Basic, CgraConfig::hom64()),
        (FlowVariant::Cab, CgraConfig::het1()),
    ]
}

/// Runs the benchmark: maps every kernel × [`bench_matrix`] combination
/// `iterations` times with `threads` mapper threads (1 = the sequential
/// hot loop), one job at a time, with no caching, timing only
/// `Mapper::map`. `extra` kernels (e.g. generated ones via
/// `--generated N`) are appended after the seven paper kernels.
pub fn run(
    iterations: u32,
    threads: usize,
    extra: &[cmam_kernels::KernelSpec],
) -> MapperBenchReport {
    assert!(iterations > 0, "at least one iteration");
    assert!(threads > 0, "at least one thread");
    let mut specs = cmam_kernels::all();
    specs.extend(extra.iter().cloned());
    let mut jobs = Vec::new();
    for spec in &specs {
        for (variant, config) in bench_matrix() {
            let mut options = variant.options();
            options.threads = threads;
            let mapper = Mapper::new(options);
            let mut ok = true;
            let mut candidates = 0u64;
            let mut peak_population = 0u64;
            let mut rollbacks = 0u64;
            let t0 = Instant::now();
            for _ in 0..iterations {
                match mapper.map(&spec.cdfg, &config) {
                    Ok(r) => {
                        candidates = r.stats.candidates;
                        peak_population = r.stats.peak_population;
                        rollbacks = r.stats.rollbacks;
                    }
                    Err(_) => ok = false,
                }
            }
            let wall_s = t0.elapsed().as_secs_f64() / iterations as f64;
            let ops = spec.cdfg.total_ops() as u64;
            jobs.push(MapperBenchJob {
                kernel: spec.name.to_owned(),
                variant: variant.to_string(),
                config: config.name().to_owned(),
                ok,
                ops,
                wall_ms: wall_s * 1e3,
                ops_per_sec: if ok && wall_s > 0.0 {
                    ops as f64 / wall_s
                } else {
                    0.0
                },
                candidates_per_sec: if wall_s > 0.0 {
                    candidates as f64 / wall_s
                } else {
                    0.0
                },
                peak_population,
                rollbacks,
            });
        }
    }
    MapperBenchReport {
        iterations,
        threads,
        jobs,
    }
}

fn json_f64(v: f64) -> String {
    // JSON has no NaN/Infinity; clamp to 0 (a job that never ran).
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_owned()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one or more runs (one per measured thread count) as the
/// `BENCH_mapper.json` document.
pub fn render_json(reports: &[MapperBenchReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {},", json_str(SCHEMA));
    s.push_str("  \"runs\": [\n");
    for (r, report) in reports.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"threads\": {},", report.threads);
        let _ = writeln!(s, "      \"iterations\": {},", report.iterations);
        s.push_str("      \"jobs\": [\n");
        for (i, j) in report.jobs.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"kernel\": {}, \"variant\": {}, \"config\": {}, \"ok\": {}, \
                 \"ops\": {}, \"wall_ms\": {}, \"ops_per_sec\": {}, \
                 \"candidates_per_sec\": {}, \"peak_population\": {}, \"rollbacks\": {}}}",
                json_str(&j.kernel),
                json_str(&j.variant),
                json_str(&j.config),
                j.ok,
                j.ops,
                json_f64(j.wall_ms),
                json_f64(j.ops_per_sec),
                json_f64(j.candidates_per_sec),
                j.peak_population,
                j.rollbacks,
            );
            s.push_str(if i + 1 < report.jobs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("      ],\n");
        s.push_str("      \"totals\": {\n");
        let _ = writeln!(
            s,
            "        \"ops_mapped_per_sec\": {},",
            json_f64(report.total_ops_per_sec())
        );
        let _ = writeln!(
            s,
            "        \"candidates_per_sec\": {},",
            json_f64(report.total_candidates_per_sec())
        );
        let _ = writeln!(
            s,
            "        \"wall_ms\": {}",
            json_f64(report.total_wall_ms())
        );
        s.push_str("      }\n");
        s.push_str(if r + 1 < reports.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// The minimal JSON reader the schema unit tests (and CI scripts) use.
/// It now lives in `cmam_obs` — shared with the Chrome-trace validator —
/// and is re-exported here under its long-standing path.
pub use cmam_obs::json;

/// Compares a freshly rendered `BENCH_mapper.json` against a committed
/// baseline document: the `threads = 1` run's `totals.ops_mapped_per_sec`
/// must be at least `min_ratio` of the baseline's. This is CI's
/// tracing-overhead gate — instrumentation that taxed the mapper hot
/// loop would show up here before anywhere else. Returns a human-readable
/// verdict line on success.
pub fn check_against_baseline(
    current: &str,
    baseline: &str,
    min_ratio: f64,
) -> Result<String, String> {
    fn sequential_ops_per_sec(doc: &str, what: &str) -> Result<f64, String> {
        let doc = json::parse(doc).map_err(|e| format!("{what}: not valid JSON: {e}"))?;
        let schema = doc.get("schema").and_then(json::Value::as_str);
        if schema != Some(SCHEMA) {
            return Err(format!("{what}: schema {schema:?}, want {SCHEMA:?}"));
        }
        doc.get("runs")
            .and_then(json::Value::as_arr)
            .and_then(|runs| {
                runs.iter()
                    .find(|r| r.get("threads").and_then(json::Value::as_f64) == Some(1.0))
            })
            .and_then(|run| run.get("totals"))
            .and_then(|t| t.get("ops_mapped_per_sec"))
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{what}: no threads=1 run with totals.ops_mapped_per_sec"))
    }
    let cur = sequential_ops_per_sec(current, "current")?;
    let base = sequential_ops_per_sec(baseline, "baseline")?;
    if base <= 0.0 {
        return Err(format!("baseline ops_mapped_per_sec is {base}"));
    }
    let ratio = cur / base;
    if ratio < min_ratio {
        return Err(format!(
            "sequential throughput regressed: {cur:.0} ops/s vs baseline {base:.0} \
             (ratio {ratio:.3} < required {min_ratio})"
        ));
    }
    Ok(format!(
        "ok: {cur:.0} ops/s vs baseline {base:.0} (ratio {ratio:.3} >= {min_ratio})"
    ))
}

/// How many fault-site checks one healthy engine job pays end-to-end:
/// four `fires` probes on the cache paths (`cache.read`, `cache.write`,
/// `cache.kill`, `cache.rename`), one corruption probe, and — per
/// execution attempt, of which a healthy job makes exactly one — a
/// `job.delay` roll and a `job.panic` check. [`measure_fault_surface_ns`]
/// times exactly this bundle.
pub const FAULT_HOOKS_PER_JOB: u32 = 7;

/// Measures the wall-clock cost, in nanoseconds, of one job's worth of
/// fault-site checks ([`FAULT_HOOKS_PER_JOB`] of them) with **no fault
/// plan installed** — the production configuration, where every check
/// must collapse to a single relaxed atomic load. Clears any installed
/// plan first: hooks-off is precisely the state under test.
pub fn measure_fault_surface_ns() -> f64 {
    cmam_fault::clear();
    const ITERS: u64 = 1_000_000;
    let t0 = Instant::now();
    let mut fired = 0u64;
    for k in 0..ITERS {
        // The key varies per iteration (and is laundered through
        // black_box) so the checks cannot be hoisted out of the loop.
        let key = std::hint::black_box(k);
        fired += u64::from(cmam_fault::fires("cache.read", key));
        fired += u64::from(cmam_fault::fires("cache.write", key));
        fired += u64::from(cmam_fault::fires("cache.kill", key));
        fired += u64::from(cmam_fault::fires("cache.rename", key));
        fired += u64::from(cmam_fault::fires_attempt("job.panic", key, 1));
        fired += u64::from(cmam_fault::roll("job.delay", key).is_some());
        let mut bytes: Vec<u8> = Vec::new();
        fired += u64::from(cmam_fault::corrupt_artifact(key, &mut bytes));
    }
    assert_eq!(fired, 0, "no plan is installed, nothing may fire");
    t0.elapsed().as_secs_f64() * 1e9 / ITERS as f64
}

/// The fault-layer overhead gate: with the layer off, the per-job cost
/// of the engine's fault-site checks (measured in this very process by
/// [`measure_fault_surface_ns`]) must not tax job throughput below
/// `min_ratio` (CI demands ≥ 0.995, i.e. hooks cost ≤ 0.5%). The
/// comparison is within-run on purpose: the hook cost and the job wall
/// come from the same machine under the same load, so the verdict is
/// about the hooks — not about benchmark-machine noise, which dwarfs
/// 0.5% across runs.
pub fn check_fault_overhead(report: &MapperBenchReport, min_ratio: f64) -> Result<String, String> {
    if report.jobs.is_empty() {
        return Err("no jobs measured".to_owned());
    }
    let per_job_wall_ns = report.total_wall_ms() * 1e6 / report.jobs.len() as f64;
    if per_job_wall_ns <= 0.0 {
        return Err(format!("per-job wall is {per_job_wall_ns} ns"));
    }
    let hook_ns = measure_fault_surface_ns();
    let ratio = per_job_wall_ns / (per_job_wall_ns + hook_ns);
    if ratio < min_ratio {
        return Err(format!(
            "fault hooks cost {hook_ns:.1} ns per job against {per_job_wall_ns:.0} ns of work \
             (throughput ratio {ratio:.5} < required {min_ratio})"
        ));
    }
    Ok(format!(
        "fault hooks off: {hook_ns:.1} ns per job ({FAULT_HOOKS_PER_JOB} checks) vs \
         {per_job_wall_ns:.0} ns of mapper work (throughput ratio {ratio:.5} >= {min_ratio})"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MapperBenchReport {
        MapperBenchReport {
            iterations: 2,
            threads: 1,
            jobs: vec![
                MapperBenchJob {
                    kernel: "fir".into(),
                    variant: "basic".into(),
                    config: "HOM64".into(),
                    ok: true,
                    ops: 40,
                    wall_ms: 10.0,
                    ops_per_sec: 4000.0,
                    candidates_per_sec: 9000.0,
                    peak_population: 192,
                    rollbacks: 512,
                },
                MapperBenchJob {
                    kernel: "fft".into(),
                    variant: "basic+ACMAP+ECMAP+CAB".into(),
                    config: "HET1".into(),
                    ok: false,
                    ops: 60,
                    wall_ms: 5.0,
                    ops_per_sec: 0.0,
                    candidates_per_sec: 0.0,
                    peak_population: 0,
                    rollbacks: 0,
                },
            ],
        }
    }

    #[test]
    fn json_schema_has_all_required_fields() {
        let mut parallel = sample();
        parallel.threads = 8;
        let doc = json::parse(&render_json(&[sample(), parallel])).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some(SCHEMA)
        );
        let runs = doc.get("runs").and_then(json::Value::as_arr).expect("runs");
        assert_eq!(runs.len(), 2);
        for (expect_threads, run) in [1.0, 8.0].iter().zip(runs) {
            assert_eq!(
                run.get("threads").and_then(json::Value::as_f64),
                Some(*expect_threads)
            );
            assert_eq!(
                run.get("iterations").and_then(json::Value::as_f64),
                Some(2.0)
            );
            let jobs = run.get("jobs").and_then(json::Value::as_arr).expect("jobs");
            assert_eq!(jobs.len(), 2);
            for job in jobs {
                for key in [
                    "kernel",
                    "variant",
                    "config",
                    "ok",
                    "ops",
                    "wall_ms",
                    "ops_per_sec",
                    "candidates_per_sec",
                    "peak_population",
                    "rollbacks",
                ] {
                    assert!(job.get(key).is_some(), "job missing {key}");
                }
            }
            let totals = run.get("totals").expect("totals");
            for key in ["ops_mapped_per_sec", "candidates_per_sec", "wall_ms"] {
                assert!(totals.get(key).is_some(), "totals missing {key}");
            }
        }
    }

    #[test]
    fn totals_aggregate_only_successful_jobs_for_ops() {
        let r = sample();
        // 40 ops in 10 ms -> 4000/s; the failed fft job contributes
        // neither ops nor wall to the throughput figure (a failing search
        // must not be able to inflate or dilute the tracked number).
        let expected = 40.0 / (10.0 / 1e3);
        assert!((r.total_ops_per_sec() - expected).abs() < 1.0);
        assert!((r.total_wall_ms() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut r = sample();
        r.jobs[0].kernel = "we\"ird\nname".into();
        let doc = json::parse(&render_json(&[r])).expect("still valid");
        let runs = doc.get("runs").and_then(json::Value::as_arr).unwrap();
        let jobs = runs[0].get("jobs").and_then(json::Value::as_arr).unwrap();
        assert_eq!(
            jobs[0].get("kernel").and_then(json::Value::as_str),
            Some("we\"ird\nname")
        );
    }

    #[test]
    fn baseline_gate_compares_sequential_totals() {
        let mut fast = sample();
        fast.threads = 1;
        let mut parallel = sample();
        parallel.threads = 8;
        let current = render_json(&[fast.clone(), parallel.clone()]);
        // Same document as its own baseline: ratio exactly 1.
        assert!(check_against_baseline(&current, &current, 0.9).is_ok());
        // A baseline 4x faster fails the 0.9 gate but passes 0.2.
        let mut quick = fast.clone();
        quick.jobs[0].wall_ms = 2.5;
        let baseline = render_json(&[quick, parallel]);
        assert!(check_against_baseline(&current, &baseline, 0.9).is_err());
        assert!(check_against_baseline(&current, &baseline, 0.2).is_ok());
        // Garbage inputs fail loudly instead of passing silently.
        assert!(check_against_baseline("{}", &current, 0.5).is_err());
        assert!(check_against_baseline(&current, "not json", 0.5).is_err());
    }

    #[test]
    fn fault_overhead_gate_passes_real_work_and_fails_impossible_ratios() {
        // Milliseconds of mapper work against nanoseconds of hook checks:
        // the production gate (0.995) passes with room to spare...
        let report = sample();
        assert!(check_fault_overhead(&report, 0.995).is_ok());
        // ...while a ratio above 1 is unsatisfiable by construction (the
        // hooks cost a nonzero number of loads) and must fail loudly.
        assert!(check_fault_overhead(&report, 1.1).is_err());
        let empty = MapperBenchReport {
            iterations: 1,
            threads: 1,
            jobs: vec![],
        };
        assert!(check_fault_overhead(&empty, 0.5).is_err());
    }

    #[test]
    fn mini_json_parser_handles_the_grammar() {
        use json::{parse, Value};
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
        let v = parse("{\"a\": [1, {\"b\": \"c\"}]}").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_arr).map(|a| a.len()), Some(2));
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }
}
