//! # cmam-bench — experiment harness
//!
//! Shared plumbing for the per-figure binaries (`tab1_configs`,
//! `fig2_occupancy`, `fig5_traversal`, `fig6_acmap`, `fig7_ecmap`,
//! `fig8_cab`, `fig9_compile_time`, `fig10_speedup`, `fig11_area`,
//! `tab2_energy`) and the Criterion benches. Every binary regenerates one
//! table or figure of the paper; `EXPERIMENTS.md` records paper-vs-measured
//! for each.

use cmam_arch::CgraConfig;
use cmam_cdfg::{Cdfg, Opcode};
use cmam_core::{FlowVariant, MapError, Mapper};
use cmam_cpu::{CpuModel, CpuStats};
use cmam_energy::{cpu_energy, EnergyBreakdown, EnergyParams};
use cmam_isa::{AsmReport, CgraBinary};
use cmam_kernels::KernelSpec;
use cmam_sim::{simulate, SimOptions, SimStats};
use std::time::{Duration, Instant};

/// Everything measured for one (kernel, flow, configuration) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Executed cycles (including stalls).
    pub cycles: u64,
    /// Simulator activity counters.
    pub sim: SimStats,
    /// Context-word accounting.
    pub report: AsmReport,
    /// The assembled binary.
    pub binary: CgraBinary,
    /// Wall-clock mapping time.
    pub compile_time: Duration,
    /// Mapper search statistics.
    pub map_stats: cmam_core::MapStats,
}

/// Why a run produced no data point (the "zero bars" of Figs 6-8).
#[derive(Debug, Clone)]
pub enum RunFailure {
    /// The mapper found no solution under the given constraints.
    Map(MapError),
    /// The mapping violated a constraint at assembly (only possible for
    /// memory-unaware flows on constrained configurations).
    Assemble(cmam_isa::AssembleError),
    /// Simulation failed or produced wrong results (always a bug).
    Execution(String),
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFailure::Map(e) => write!(f, "no mapping: {e}"),
            RunFailure::Assemble(e) => write!(f, "does not fit: {e}"),
            RunFailure::Execution(e) => write!(f, "execution failure: {e}"),
        }
    }
}

/// Maps, assembles, simulates and checks one kernel with one flow variant
/// on one configuration.
pub fn run_flow(
    spec: &KernelSpec,
    variant: FlowVariant,
    config: &CgraConfig,
) -> Result<RunOutcome, RunFailure> {
    let mapper = Mapper::new(variant.options());
    let t0 = Instant::now();
    let result = mapper.map(&spec.cdfg, config).map_err(RunFailure::Map)?;
    let compile_time = t0.elapsed();
    let (binary, report) =
        cmam_isa::assemble(&spec.cdfg, &result.mapping, config).map_err(RunFailure::Assemble)?;
    let mut mem = spec.mem.clone();
    let sim = simulate(&binary, config, &mut mem, SimOptions::default())
        .map_err(|e| RunFailure::Execution(e.to_string()))?;
    spec.check(&mem).map_err(|(i, got, want)| {
        RunFailure::Execution(format!("mem[{i}] = {got}, want {want}"))
    })?;
    Ok(RunOutcome {
        cycles: sim.cycles,
        sim,
        report,
        binary,
        compile_time,
        map_stats: result.stats,
    })
}

/// Runs the CPU baseline for a kernel, returning the profile and checking
/// the outputs against the reference.
pub fn run_cpu(spec: &KernelSpec) -> (CpuStats, EnergyBreakdown) {
    let model = CpuModel::default();
    let mut mem = spec.mem.clone();
    let (stats, _) = model
        .run(&spec.cdfg, &mut mem, 100_000_000)
        .expect("kernels terminate");
    spec.check(&mem)
        .unwrap_or_else(|(i, got, want)| panic!("CPU run wrong: mem[{i}]={got}, want {want}"));
    let energy = cpu_energy(&EnergyParams::default(), &stats);
    (stats, energy)
}

/// Static fraction of multiply operations among a kernel's ALU operations
/// (weights the CGRA datapath energy).
pub fn mul_fraction(cdfg: &Cdfg) -> f64 {
    let mut alu = 0usize;
    let mut mul = 0usize;
    for b in cdfg.block_ids() {
        for op in cdfg.dfg(b).ops() {
            if !op.opcode.is_memory() {
                alu += 1;
                if op.opcode == Opcode::Mul {
                    mul += 1;
                }
            }
        }
    }
    if alu == 0 {
        0.0
    } else {
        mul as f64 / alu as f64
    }
}

/// CGRA energy of a run outcome under the default parameters.
pub fn cgra_energy_of(spec: &KernelSpec, config: &CgraConfig, out: &RunOutcome) -> EnergyBreakdown {
    cmam_energy::cgra_energy(
        &EnergyParams::default(),
        config,
        &out.sim,
        mul_fraction(&spec.cdfg),
    )
}

/// Renders a markdown-style table: a header row plus data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        println!("{s}");
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    println!("{sep}");
    for row in rows {
        line(row.clone());
    }
}

/// Formats a ratio as e.g. `2.31x`, or `-` for a missing data point.
pub fn ratio(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.2}x"),
        None => "-".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_fraction_counts_static_ops() {
        let spec = cmam_kernels::fir::spec();
        let f = mul_fraction(&spec.cdfg);
        assert!(f > 0.1 && f < 0.5, "{f}");
    }

    #[test]
    fn run_cpu_produces_cycles_and_energy() {
        let spec = cmam_kernels::dc::spec();
        let (stats, energy) = run_cpu(&spec);
        assert!(stats.cycles > 0);
        assert!(energy.total() > 0.0);
    }
}

/// Shared driver for Figs 6-8: latency of one flow variant on the
/// constrained configurations (HOM32, HET1, HET2), normalised to the
/// basic mapping on HOM64. Failures print as `0 (none)` — the zero bars
/// of the paper's charts.
pub fn latency_sweep(title: &str, variant: FlowVariant) {
    println!("# {title} (flow: {variant})\n");
    let configs = [CgraConfig::hom32(), CgraConfig::het1(), CgraConfig::het2()];
    let mut rows = Vec::new();
    for spec in cmam_kernels::all() {
        let base =
            run_flow(&spec, FlowVariant::Basic, &CgraConfig::hom64()).expect("basic maps on HOM64");
        let mut row = vec![spec.name.to_owned(), base.cycles.to_string()];
        for config in &configs {
            match run_flow(&spec, variant, config) {
                Ok(out) => row.push(format!("{:.2}", out.cycles as f64 / base.cycles as f64)),
                Err(e) => {
                    row.push("0 (none)".to_owned());
                    eprintln!("  [{}] {}: {e}", config.name(), spec.name);
                }
            }
        }
        rows.push(row);
    }
    print_table(&["Kernel", "base cyc", "HOM32", "HET1", "HET2"], &rows);
    println!("\n(latency normalised to basic mapping on HOM64; 0 = no mapping found)");
}
