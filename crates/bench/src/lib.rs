//! # cmam-bench — experiment harness
//!
//! Shared plumbing for the per-figure binaries (`tab1_configs`,
//! `fig2_occupancy`, `fig5_traversal`, `fig6_acmap`, `fig7_ecmap`,
//! `fig8_cab`, `fig9_compile_time`, `fig10_speedup`, `fig11_area`,
//! `tab2_energy`, `dse_pareto`) and the Criterion benches. Every binary
//! regenerates one table or figure of the paper (or, for `dse_pareto`, a
//! scenario beyond it).
//!
//! All mapping work is submitted through the shared [`engine()`] — a
//! [`cmam_engine::Engine`] that deduplicates identical jobs, runs batches
//! on a work-stealing thread pool and memoises every outcome in memory
//! and on disk (`target/cmam-cache/`). Every binary therefore understands
//! `--jobs N` (worker threads), `--no-cache` (disable the disk store) and
//! `--csv` (machine-readable output alongside each table).

use cmam_arch::CgraConfig;
use cmam_cdfg::{Cdfg, Opcode};
use cmam_core::FlowVariant;
use cmam_cpu::{CpuModel, CpuStats};
use cmam_energy::{cpu_energy, EnergyBreakdown, EnergyParams};
use cmam_kernels::KernelSpec;
use std::sync::OnceLock;

pub mod dse_bench;
pub mod gen;
pub mod mapper_bench;
pub mod obs_session;
pub mod sim_bench;

pub use gen::GenCli;
pub use obs_session::{obs_session, ObsSession};

pub use cmam_engine::{
    smoke_matrix, Engine, EngineOptions, EngineStats, FailStage, JobFailure, JobRequest,
    RunFailure, RunOutcome,
};

/// The process-wide compilation engine, configured once from the
/// command-line arguments (`--jobs N`, `--no-cache`).
///
/// Binaries share this instance so that repeated (kernel, flow, config)
/// combinations — e.g. the HOM64 baseline every figure normalises to —
/// compile exactly once per process, and once per *cache lifetime* across
/// processes.
pub fn engine() -> &'static Engine {
    ENGINE.get_or_init(|| Engine::new(EngineOptions::from_args()))
}

static ENGINE: OnceLock<Engine> = OnceLock::new();

/// The shared engine if some code path already constructed it — used by
/// the [`obs_session()`] end-of-run summary, which must not *create* an
/// engine (and its cache directory) in binaries that never compiled
/// anything.
pub fn engine_if_started() -> Option<&'static Engine> {
    ENGINE.get()
}

/// Warms the shared engine with one parallel batch over the canonical
/// smoke matrix for the given kernels; per-row [`run_flow`] lookups after
/// this are memo hits, so callers keep simple sequential table-building
/// code while the actual mapping work ran in parallel.
pub fn prewarm_smoke_matrix(specs: &[KernelSpec]) {
    let matrix = smoke_matrix();
    let requests: Vec<JobRequest> = specs
        .iter()
        .flat_map(|s| matrix.iter().map(move |(v, c)| JobRequest::flow(s, *v, c)))
        .collect();
    engine().run_batch(&requests);
}

/// Maps, assembles, simulates and checks one kernel with one flow variant
/// on one configuration, through the shared [`engine()`].
pub fn run_flow(
    spec: &KernelSpec,
    variant: FlowVariant,
    config: &CgraConfig,
) -> Result<RunOutcome, RunFailure> {
    engine().run_one(&JobRequest::flow(spec, variant, config))
}

/// Runs the CPU baseline for a kernel, returning the profile and checking
/// the outputs against the reference.
pub fn run_cpu(spec: &KernelSpec) -> (CpuStats, EnergyBreakdown) {
    let model = CpuModel::default();
    let mut mem = spec.mem.clone();
    let (stats, _) = model
        .run(&spec.cdfg, &mut mem, 100_000_000)
        .expect("kernels terminate");
    spec.check(&mem)
        .unwrap_or_else(|(i, got, want)| panic!("CPU run wrong: mem[{i}]={got}, want {want}"));
    let energy = cpu_energy(&EnergyParams::default(), &stats);
    (stats, energy)
}

/// Static fraction of multiply operations among a kernel's ALU operations
/// (weights the CGRA datapath energy).
pub fn mul_fraction(cdfg: &Cdfg) -> f64 {
    let mut alu = 0usize;
    let mut mul = 0usize;
    for b in cdfg.block_ids() {
        for op in cdfg.dfg(b).ops() {
            if !op.opcode.is_memory() {
                alu += 1;
                if op.opcode == Opcode::Mul {
                    mul += 1;
                }
            }
        }
    }
    if alu == 0 {
        0.0
    } else {
        mul as f64 / alu as f64
    }
}

/// CGRA energy of a run outcome under the default parameters.
pub fn cgra_energy_of(spec: &KernelSpec, config: &CgraConfig, out: &RunOutcome) -> EnergyBreakdown {
    cmam_energy::cgra_energy(
        &EnergyParams::default(),
        config,
        &out.sim,
        mul_fraction(&spec.cdfg),
    )
}

/// Whether `--csv` was passed to the current process.
pub fn csv_flag() -> bool {
    std::env::args().skip(1).any(|a| a == "--csv")
}

/// Renders a markdown-style table: a header row plus data rows.
///
/// Ragged input is tolerated: rows wider than the header grow extra
/// columns, rows narrower than the widest are padded with empty cells.
/// An empty row set prints just the header and separator.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let ncols = rows
        .iter()
        .map(Vec::len)
        .max()
        .unwrap_or(0)
        .max(headers.len());
    let mut widths = vec![0usize; ncols];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let c = cells.get(i).unwrap_or(&empty);
            s.push_str(&format!(" {:<w$} |", c, w = w));
        }
        println!("{s}");
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    println!("{sep}");
    for row in rows {
        line(row);
    }
}

/// Renders the same data as RFC-4180-style CSV (quoting cells containing
/// commas, quotes or newlines).
pub fn print_csv(headers: &[&str], rows: &[Vec<String>]) {
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_owned()
        }
    };
    println!(
        "{}",
        headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    );
    for row in rows {
        println!(
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        );
    }
}

/// Prints the table, and — when the process was invoked with `--csv` —
/// the same data again as CSV after a blank line. Every experiment binary
/// emits its tables through this.
pub fn emit_table(headers: &[&str], rows: &[Vec<String>]) {
    print_table(headers, rows);
    if csv_flag() {
        println!();
        print_csv(headers, rows);
    }
}

/// Formats a ratio as e.g. `2.31x`, or `-` for a missing or undefined
/// data point (`None`, NaN or an infinity — a `0/0` latency ratio must
/// render as missing, not as `NaNx`).
pub fn ratio(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v:.2}x"),
        _ => "-".to_owned(),
    }
}

/// Shared driver for Figs 6-8: latency of one flow variant on the
/// constrained configurations (HOM32, HET1, HET2), normalised to the
/// basic mapping on HOM64. Failures print as `0 (none)` — the zero bars
/// of the paper's charts.
///
/// All 28 jobs (7 kernels x (1 baseline + 3 configs)) are submitted as a
/// single engine batch, so they run in parallel and dedup against other
/// figures' jobs; the table is rendered afterwards in deterministic
/// order, so the output is byte-identical for any `--jobs` count.
pub fn latency_sweep(title: &str, variant: FlowVariant) {
    println!("# {title} (flow: {variant})\n");
    let specs = cmam_kernels::all();
    let hom64 = CgraConfig::hom64();
    let configs = [CgraConfig::hom32(), CgraConfig::het1(), CgraConfig::het2()];
    let mut requests = Vec::new();
    for spec in &specs {
        requests.push(JobRequest::flow(spec, FlowVariant::Basic, &hom64));
        for config in &configs {
            requests.push(JobRequest::flow(spec, variant, config));
        }
    }
    let results = engine().run_batch(&requests);
    let mut rows = Vec::new();
    let per_kernel = 1 + configs.len();
    for (k, spec) in specs.iter().enumerate() {
        let base = results[k * per_kernel]
            .as_ref()
            .expect("basic maps on HOM64");
        let mut row = vec![spec.name.to_owned(), base.cycles.to_string()];
        for (c, config) in configs.iter().enumerate() {
            match &results[k * per_kernel + 1 + c] {
                Ok(out) => row.push(format!("{:.2}", out.cycles as f64 / base.cycles as f64)),
                Err(e) => {
                    row.push("0 (none)".to_owned());
                    eprintln!("  [{}] {}: {e}", config.name(), spec.name);
                }
            }
        }
        rows.push(row);
    }
    emit_table(&["Kernel", "base cyc", "HOM32", "HET1", "HET2"], &rows);
    println!("\n(latency normalised to basic mapping on HOM64; 0 = no mapping found)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_fraction_counts_static_ops() {
        let spec = cmam_kernels::fir::spec();
        let f = mul_fraction(&spec.cdfg);
        assert!(f > 0.1 && f < 0.5, "{f}");
    }

    #[test]
    fn run_cpu_produces_cycles_and_energy() {
        let spec = cmam_kernels::dc::spec();
        let (stats, energy) = run_cpu(&spec);
        assert!(stats.cycles > 0);
        assert!(energy.total() > 0.0);
    }

    #[test]
    fn ratio_formats_values_and_rejects_non_finite() {
        assert_eq!(ratio(Some(2.309)), "2.31x");
        assert_eq!(ratio(Some(0.0)), "0.00x");
        assert_eq!(ratio(None), "-");
        assert_eq!(ratio(Some(f64::NAN)), "-");
        assert_eq!(ratio(Some(f64::INFINITY)), "-");
        assert_eq!(ratio(Some(f64::NEG_INFINITY)), "-");
    }

    #[test]
    fn print_table_handles_empty_and_ragged_rows() {
        // These must simply not panic; the old implementation indexed
        // `widths[i]` out of bounds for rows wider than the header.
        print_table(&["A", "B"], &[]);
        print_table(&["A"], &[vec!["1".into(), "2".into(), "3".into()], vec![]]);
        print_table(&[], &[vec!["x".into()]]);
    }

    #[test]
    fn csv_quotes_only_what_needs_quoting() {
        // print_csv writes to stdout; exercise the quoting rule through a
        // row that would break naive joining.
        print_csv(
            &["name", "note"],
            &[vec!["a,b".into(), "say \"hi\"\nok".into()]],
        );
    }

    #[test]
    fn run_flow_through_engine_matches_direct_execution() {
        let spec = cmam_kernels::dc::spec();
        let config = CgraConfig::hom64();
        let via_engine = run_flow(&spec, FlowVariant::Basic, &config).expect("DC maps");
        let direct = cmam_engine::execute(&JobRequest::flow(&spec, FlowVariant::Basic, &config))
            .expect("DC maps");
        assert_eq!(via_engine.content_digest(), direct.content_digest());
    }
}
