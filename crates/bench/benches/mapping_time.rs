//! Criterion bench behind Fig 9: compilation (mapping) time per flow
//! variant. The paper reports the full context-aware flow at ~1.8x the
//! basic flow's time; this bench measures the same ratio on this
//! implementation (DC filter and FFT as the small/medium workloads so the
//! bench stays fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cmam_arch::CgraConfig;
use cmam_core::{FlowVariant, Mapper};

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_time");
    group.sample_size(10);
    for (kname, spec) in [
        ("dc", cmam_kernels::dc::spec()),
        ("fft", cmam_kernels::fft::spec()),
    ] {
        for variant in [FlowVariant::Basic, FlowVariant::Acmap, FlowVariant::Cab] {
            let config = if variant == FlowVariant::Basic {
                CgraConfig::hom64()
            } else {
                CgraConfig::het1()
            };
            group.bench_with_input(BenchmarkId::new(kname, variant), &spec, |b, spec| {
                b.iter(|| {
                    let mapper = Mapper::new(variant.options());
                    black_box(mapper.map(black_box(&spec.cdfg), &config))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
