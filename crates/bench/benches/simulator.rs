//! Criterion bench of the cycle-level simulator and the assembler: the
//! substrate costs behind every latency/energy figure. Reported per
//! kernel-execution so throughput regressions in the simulator or the
//! assembler are visible independently of mapper changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cmam_arch::CgraConfig;
use cmam_core::{FlowVariant, Mapper};
use cmam_sim::{simulate, simulate_reference, DecodedProgram, SimOptions};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    let config = CgraConfig::hom64();
    for spec in [cmam_kernels::dc::spec(), cmam_kernels::fir::spec()] {
        let mapper = Mapper::new(FlowVariant::Basic.options());
        let result = mapper.map(&spec.cdfg, &config).expect("maps");
        let (binary, _) = cmam_isa::assemble(&spec.cdfg, &result.mapping, &config).expect("asm");
        group.bench_with_input(
            BenchmarkId::new("simulate", &spec.name),
            &binary,
            |b, binary| {
                b.iter(|| {
                    let mut mem = spec.mem.clone();
                    black_box(simulate(binary, &config, &mut mem, SimOptions::default()))
                })
            },
        );
        // The decoded fast path with the one-time decode hoisted out —
        // the steady-state cost a sweep pays per simulation.
        let decoded = DecodedProgram::decode(&binary, &config).expect("decodes");
        group.bench_with_input(
            BenchmarkId::new("simulate_decoded", &spec.name),
            &decoded,
            |b, decoded| {
                b.iter(|| {
                    let mut mem = spec.mem.clone();
                    black_box(decoded.simulate(&mut mem, SimOptions::default()))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("simulate_reference", &spec.name),
            &binary,
            |b, binary| {
                b.iter(|| {
                    let mut mem = spec.mem.clone();
                    black_box(simulate_reference(
                        binary,
                        &config,
                        &mut mem,
                        SimOptions::default(),
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("assemble", &spec.name),
            &result.mapping,
            |b, mapping| b.iter(|| black_box(cmam_isa::assemble(&spec.cdfg, mapping, &config))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
