//! Cross-process determinism of the workload generator, pinned through
//! the `gen_suite` binary: two separate processes asked for the same
//! suite must print byte-identical kernel digests (`--digest` hashes each
//! kernel's full structure — name, graph, memory image, expected output).
//!
//! This is the strongest form of the generator-determinism guarantee: it
//! would catch ASLR-dependent hashing, `HashMap` iteration leaks, or any
//! other per-process ambient state that the in-process tests (same
//! process, same layout) cannot.

use std::process::Command;

fn digest_run(args: &[&str]) -> String {
    let exe = env!("CARGO_BIN_EXE_gen_suite");
    let out = Command::new(exe)
        .args(args)
        .output()
        .expect("gen_suite runs");
    assert!(
        out.status.success(),
        "gen_suite {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn two_processes_generate_identical_suites() {
    let args = ["--digest", "--count", "12", "--seed", "0xD15EA5E"];
    let first = digest_run(&args);
    let second = digest_run(&args);
    assert_eq!(first, second, "generation differs across processes");
    assert_eq!(first.lines().count(), 12);
    // Sanity: the digests really cover 12 *different* kernels.
    let mut digests: Vec<&str> = first
        .lines()
        .map(|l| l.split_whitespace().nth(1).expect("name digest"))
        .collect();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), 12, "digest collision across kernels");
}

#[test]
fn root_seed_selects_a_different_suite() {
    let a = digest_run(&["--digest", "--count", "4", "--seed", "1"]);
    let b = digest_run(&["--digest", "--count", "4", "--seed", "2"]);
    assert_ne!(a, b);
}

#[test]
fn kernel_seed_replays_one_exact_kernel() {
    // The repro path: a kernel from a suite replays identically when
    // addressed directly by its generation seed.
    let suite = digest_run(&[
        "--digest",
        "--count",
        "3",
        "--seed",
        "0xABC",
        "--profile",
        "deep",
    ]);
    let line = suite.lines().nth(1).expect("three kernels");
    let (name, digest) = {
        let mut it = line.split_whitespace();
        (it.next().unwrap(), it.next().unwrap())
    };
    let seed = name.rsplit('-').next().expect("gen-<profile>-<seed> name");
    let replay = digest_run(&[
        "--digest",
        "--profile",
        "deep",
        "--kernel-seed",
        &format!("0x{seed}"),
    ]);
    let mut it = replay.split_whitespace();
    assert_eq!(it.next(), Some(name));
    assert_eq!(it.next(), Some(digest));
}
