//! Operation nodes (`Vo` in the paper) and the per-block data-flow view.

use crate::cdfg::{BlockId, Cdfg};
use crate::op::Opcode;
use crate::value::{SymbolId, Value, ValueId, ValueKind};
use std::fmt;

/// Identifier of an operation node. Ids are global to one [`Cdfg`] (the
/// arena lives on the CDFG); each op belongs to exactly one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Identifier of a memory alias class (e.g. one source array). Memory
/// operations in different classes are independent; within one class the
/// usual load/store ordering is enforced by
/// [`crate::analysis::order_edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AliasClass(pub u32);

impl fmt::Display for AliasClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mem#{}", self.0)
    }
}

/// An operation node of a block's data-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Identity.
    pub id: OpId,
    /// Owning basic block.
    pub block: BlockId,
    /// The opcode.
    pub opcode: Opcode,
    /// Value operands, in positional order (`opcode.arity()` of them).
    pub args: Vec<ValueId>,
    /// Result data node, when `opcode.has_result()`.
    pub result: Option<ValueId>,
    /// Symbol variable updated by this op's result at block exit, if any.
    pub writes_symbol: Option<SymbolId>,
    /// Alias class for memory operations (`None` for non-memory ops).
    pub alias: Option<AliasClass>,
}

/// Immutable per-block data-flow view: the bipartite graph
/// `b = (Vd, Vo, E)` of Section III-A.
///
/// Obtained from [`Cdfg::dfg`]. Operations are stored in program order
/// (which the interpreter executes and analyses treat as the sequential
/// order for memory dependencies).
#[derive(Debug, Clone, Copy)]
pub struct Dfg<'a> {
    cdfg: &'a Cdfg,
    block: BlockId,
}

impl<'a> Dfg<'a> {
    pub(crate) fn new(cdfg: &'a Cdfg, block: BlockId) -> Self {
        Dfg { cdfg, block }
    }

    /// The block this view describes.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// Operation ids in program order.
    pub fn op_ids(&self) -> &'a [OpId] {
        &self.cdfg.block(self.block).ops
    }

    /// Number of operation nodes (`n(Vo)` in Section III-C).
    pub fn num_ops(&self) -> usize {
        self.op_ids().len()
    }

    /// Operations in program order.
    pub fn ops(&self) -> impl Iterator<Item = &'a Op> + 'a {
        let cdfg = self.cdfg;
        self.op_ids().iter().map(move |&id| cdfg.op(id))
    }

    /// Data nodes referenced by this block (operands and results), in
    /// first-appearance order, deduplicated.
    pub fn values(&self) -> Vec<&'a Value> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for op in self.ops() {
            for &a in &op.args {
                if seen.insert(a) {
                    out.push(self.cdfg.value(a));
                }
            }
            if let Some(r) = op.result {
                if seen.insert(r) {
                    out.push(self.cdfg.value(r));
                }
            }
        }
        out
    }

    /// The consumers of a value among this block's operations.
    pub fn consumers(&self, value: ValueId) -> Vec<OpId> {
        self.ops()
            .filter(|op| op.args.contains(&value))
            .map(|op| op.id)
            .collect()
    }

    /// Fan-out of an operation: number of argument slots its result feeds,
    /// plus one if it writes a symbol (the cross-block consumer).
    pub fn fanout(&self, op: OpId) -> usize {
        let o = self.cdfg.op(op);
        let mut n = 0;
        if let Some(r) = o.result {
            n += self
                .ops()
                .map(|c| c.args.iter().filter(|&&a| a == r).count())
                .sum::<usize>();
        }
        if o.writes_symbol.is_some() {
            n += 1;
        }
        n
    }

    /// Distinct constants used by this block's operations (CRF pressure).
    pub fn constants(&self) -> Vec<i32> {
        let mut out = Vec::new();
        for op in self.ops() {
            for &a in &op.args {
                if let ValueKind::Const(c) = self.cdfg.value(a).kind {
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Symbols read by this block (through [`ValueKind::SymbolUse`]
    /// operands), deduplicated in first-use order.
    pub fn symbols_read(&self) -> Vec<SymbolId> {
        let mut out = Vec::new();
        for op in self.ops() {
            for &a in &op.args {
                if let ValueKind::SymbolUse(s) = self.cdfg.value(a).kind {
                    if !out.contains(&s) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }

    /// Symbols written by this block, in program order.
    pub fn symbols_written(&self) -> Vec<SymbolId> {
        let mut out = Vec::new();
        for op in self.ops() {
            if let Some(s) = op.writes_symbol {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Data-dependency predecessors of `op` *within this block*: the ops
    /// producing its operands.
    pub fn data_preds(&self, op: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        for &a in &self.cdfg.op(op).args {
            if let ValueKind::Def(p) = self.cdfg.value(a).kind {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CdfgBuilder;
    use crate::op::Opcode;

    #[test]
    fn dfg_views_ops_and_values() {
        let mut b = CdfgBuilder::new("t");
        let bb = b.block("b0");
        b.select(bb);
        let c1 = b.constant(1);
        let c2 = b.constant(2);
        let sum = b.op(Opcode::Add, &[c1, c2]);
        let _prod = b.op(Opcode::Mul, &[sum, c2]);
        b.ret();
        let cdfg = b.finish().unwrap();

        let dfg = cdfg.dfg(bb);
        assert_eq!(dfg.num_ops(), 2);
        assert_eq!(dfg.constants(), vec![1, 2]);
        // add feeds mul once.
        let add_id = dfg.op_ids()[0];
        assert_eq!(dfg.fanout(add_id), 1);
        assert_eq!(dfg.data_preds(dfg.op_ids()[1]), vec![add_id]);
        assert_eq!(dfg.consumers(sum), vec![dfg.op_ids()[1]]);
        // Values: c1, c2, sum result, mul result.
        assert_eq!(dfg.values().len(), 4);
    }

    #[test]
    fn symbol_read_write_tracking() {
        let mut b = CdfgBuilder::new("t");
        let bb = b.block("b0");
        let s = b.symbol("x");
        b.select(bb);
        let v = b.use_symbol(s);
        let c = b.constant(3);
        let r = b.op(Opcode::Add, &[v, c]);
        b.write_symbol(r, s);
        b.ret();
        let cdfg = b.finish().unwrap();
        let dfg = cdfg.dfg(bb);
        assert_eq!(dfg.symbols_read(), vec![s]);
        assert_eq!(dfg.symbols_written(), vec![s]);
        // Fanout counts the symbol write as one consumer.
        let add = dfg.op_ids()[0];
        assert_eq!(dfg.fanout(add), 1);
    }
}
