//! The control-data flow graph container.

use crate::dfg::{AliasClass, Dfg, Op, OpId};
use crate::validate::ValidateError;
use crate::value::{Symbol, SymbolId, Value, ValueId};
use std::fmt;

/// Identifier of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump; handled by the CGRA's global controller without
    /// consuming an instruction slot.
    Jump(BlockId),
    /// Two-way branch decided by the block's [`crate::Opcode::Br`]
    /// operation `op`: control goes to `taken` when the condition is
    /// non-zero, `fallthrough` otherwise.
    Branch {
        /// The `Br` operation computing/latching the decision.
        op: OpId,
        /// Successor when the condition is non-zero.
        taken: BlockId,
        /// Successor when the condition is zero.
        fallthrough: BlockId,
    },
    /// Kernel end.
    Return,
}

impl Terminator {
    /// The control-flow successors of the block.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(b) => vec![b],
            Terminator::Branch {
                taken, fallthrough, ..
            } => vec![taken, fallthrough],
            Terminator::Return => Vec::new(),
        }
    }
}

/// A basic block: a name, its operations in program order, and the
/// terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Identity.
    pub id: BlockId,
    /// Human-readable name.
    pub name: String,
    /// Operations in program order.
    pub ops: Vec<OpId>,
    /// The block's terminator. `None` only while under construction;
    /// [`crate::Cdfg::validate`] rejects it.
    pub terminator: Option<Terminator>,
}

/// A whole kernel: basic blocks, control-flow edges, operation and value
/// arenas, symbol variables and memory alias classes.
///
/// Construct with [`crate::CdfgBuilder`]; inspect per-block data flow with
/// [`Cdfg::dfg`]. Equality is full structural equality (every block, op,
/// value, symbol and alias class) — the generator-determinism suite relies
/// on it to pin byte-identical generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cdfg {
    pub(crate) name: String,
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) ops: Vec<Op>,
    pub(crate) values: Vec<Value>,
    pub(crate) value_block: Vec<BlockId>,
    pub(crate) symbols: Vec<Symbol>,
    pub(crate) alias_names: Vec<String>,
    pub(crate) entry: BlockId,
}

impl Cdfg {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// All block ids in creation order (the "forward" order of the paper's
    /// basic traversal).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks.iter().map(|b| b.id)
    }

    /// A block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// An operation by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.0 as usize]
    }

    /// A value by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.0 as usize]
    }

    /// The block in which a value was created.
    pub fn value_block(&self, id: ValueId) -> BlockId {
        self.value_block[id.0 as usize]
    }

    /// A symbol by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn symbol(&self, id: SymbolId) -> &Symbol {
        &self.symbols[id.0 as usize]
    }

    /// All symbols with ids.
    pub fn symbols(&self) -> impl Iterator<Item = (SymbolId, &Symbol)> + '_ {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (SymbolId(i as u32), s))
    }

    /// Number of symbol variables.
    pub fn num_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// Total number of value (data) nodes over all blocks — the bound of
    /// the dense `ValueId`-indexed tables the mapper keeps.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Name of a memory alias class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn alias_name(&self, class: AliasClass) -> &str {
        &self.alias_names[class.0 as usize]
    }

    /// The per-block data-flow view.
    pub fn dfg(&self, block: BlockId) -> Dfg<'_> {
        Dfg::new(self, block)
    }

    /// Total number of operation nodes over all blocks (`Σ n(Vo)`).
    pub fn total_ops(&self) -> usize {
        self.ops.len()
    }

    /// Control-flow successors of a block.
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        self.block(block)
            .terminator
            .as_ref()
            .map(|t| t.successors())
            .unwrap_or_default()
    }

    /// Control-flow predecessors of a block.
    pub fn predecessors(&self, block: BlockId) -> Vec<BlockId> {
        self.block_ids()
            .filter(|&b| self.successors(b).contains(&block))
            .collect()
    }

    /// Structural validation; see [`crate::validate`] for the rule list.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        crate::validate::validate(self)
    }
}

impl fmt::Display for Cdfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cdfg {} ({} blocks, {} ops, {} symbols)",
            self.name,
            self.num_blocks(),
            self.total_ops(),
            self.num_symbols()
        )?;
        for bb in &self.blocks {
            let term = match &bb.terminator {
                Some(Terminator::Jump(b)) => format!("jump {b}"),
                Some(Terminator::Branch {
                    taken, fallthrough, ..
                }) => format!("branch {taken} / {fallthrough}"),
                Some(Terminator::Return) => "return".to_owned(),
                None => "<unterminated>".to_owned(),
            };
            writeln!(
                f,
                "  {} \"{}\": {} ops, {}",
                bb.id,
                bb.name,
                bb.ops.len(),
                term
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CdfgBuilder;
    use crate::cdfg::Terminator;
    use crate::op::Opcode;

    fn diamond() -> crate::Cdfg {
        // entry -> (then | else) -> exit
        let mut b = CdfgBuilder::new("diamond");
        let entry = b.block("entry");
        let then_b = b.block("then");
        let else_b = b.block("else");
        let exit = b.block("exit");
        let s = b.symbol("x");

        b.select(entry);
        let c = b.constant(1);
        let z = b.constant(0);
        let cond = b.op(Opcode::Gt, &[c, z]);
        b.mov_const_to_symbol(5, s);
        b.branch(cond, then_b, else_b);

        b.select(then_b);
        let x = b.use_symbol(s);
        let one = b.constant(1);
        let r = b.op(Opcode::Add, &[x, one]);
        b.write_symbol(r, s);
        b.jump(exit);

        b.select(else_b);
        let x = b.use_symbol(s);
        let two = b.constant(2);
        let r = b.op(Opcode::Add, &[x, two]);
        b.write_symbol(r, s);
        b.jump(exit);

        b.select(exit);
        let x = b.use_symbol(s);
        let a = b.constant(0);
        b.store(a, x, "out");
        b.ret();

        b.finish().unwrap()
    }

    #[test]
    fn successors_and_predecessors() {
        let c = diamond();
        let ids: Vec<_> = c.block_ids().collect();
        assert_eq!(c.successors(ids[0]), vec![ids[1], ids[2]]);
        assert_eq!(c.predecessors(ids[3]), vec![ids[1], ids[2]]);
        assert_eq!(c.successors(ids[3]), vec![]);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Return.successors(), vec![]);
        assert_eq!(
            Terminator::Jump(crate::BlockId(3)).successors(),
            vec![crate::BlockId(3)]
        );
    }

    #[test]
    fn display_contains_structure() {
        let c = diamond();
        let s = c.to_string();
        assert!(s.contains("diamond"));
        assert!(s.contains("branch"));
        assert!(s.contains("return"));
    }
}
