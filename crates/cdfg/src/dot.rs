//! Graphviz (DOT) export of CDFGs — the standard way to inspect what the
//! mapper is being asked to place. Two levels: the control-flow graph
//! ([`cfg_dot`]) and a full per-block data-flow rendering ([`cdfg_dot`])
//! with operation nodes, data edges and symbol reads/writes.

use crate::cdfg::{Cdfg, Terminator};
use crate::value::ValueKind;
use std::fmt::Write;

/// Renders the control-flow graph: one node per basic block (labelled
/// with its name and op count), edges for jumps and branches.
pub fn cfg_dot(cdfg: &Cdfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}_cfg\" {{", cdfg.name());
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for b in cdfg.block_ids() {
        let bb = cdfg.block(b);
        let _ = writeln!(
            out,
            "  {b} [label=\"{b} {}\\n{} ops\"];",
            bb.name,
            bb.ops.len()
        );
        match bb.terminator.as_ref().expect("validated cdfg") {
            Terminator::Jump(t) => {
                let _ = writeln!(out, "  {b} -> {t};");
            }
            Terminator::Branch {
                taken, fallthrough, ..
            } => {
                let _ = writeln!(out, "  {b} -> {taken} [label=\"T\"];");
                let _ = writeln!(out, "  {b} -> {fallthrough} [label=\"F\"];");
            }
            Terminator::Return => {
                let _ = writeln!(out, "  {b} -> exit_{b} [style=dashed];");
                let _ = writeln!(out, "  exit_{b} [label=\"return\", shape=plaintext];");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the full CDFG: clusters per block with operation nodes, data
/// edges, constants and symbol reads/writes.
pub fn cdfg_dot(cdfg: &Cdfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", cdfg.name());
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for b in cdfg.block_ids() {
        let bb = cdfg.block(b);
        let _ = writeln!(out, "  subgraph cluster_{b} {{");
        let _ = writeln!(out, "    label=\"{b} {}\";", bb.name);
        for &oid in &bb.ops {
            let op = cdfg.op(oid);
            let mut label = format!("{} {}", oid, op.opcode);
            if let Some(s) = op.writes_symbol {
                let _ = write!(label, " →{}", cdfg.symbol(s).name);
            }
            let _ = writeln!(out, "    {oid} [label=\"{label}\", shape=ellipse];");
        }
        let _ = writeln!(out, "  }}");
        // Data edges (drawn outside the cluster bodies for readability).
        for &oid in &bb.ops {
            let op = cdfg.op(oid);
            for &a in &op.args {
                match cdfg.value(a).kind {
                    ValueKind::Def(p) => {
                        let _ = writeln!(out, "  {p} -> {oid};");
                    }
                    ValueKind::Const(c) => {
                        let cn = format!("const_{}_{}", oid, c.unsigned_abs());
                        let _ = writeln!(out, "  {cn} [label=\"{c}\", shape=plaintext];");
                        let _ = writeln!(out, "  {cn} -> {oid};");
                    }
                    ValueKind::SymbolUse(s) => {
                        let sn = format!("sym_{}_{}", b, s.0);
                        let _ = writeln!(
                            out,
                            "  {sn} [label=\"{}\", shape=diamond];",
                            cdfg.symbol(s).name
                        );
                        let _ = writeln!(out, "  {sn} -> {oid};");
                    }
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdfgBuilder;
    use crate::op::Opcode;

    fn looped() -> Cdfg {
        let mut b = CdfgBuilder::new("loopy");
        let b0 = b.block("entry");
        let b1 = b.block("body");
        let b2 = b.block("exit");
        let i = b.symbol("i");
        b.select(b0);
        b.mov_const_to_symbol(0, i);
        b.jump(b1);
        b.select(b1);
        let iv = b.use_symbol(i);
        let one = b.constant(1);
        let i2 = b.op(Opcode::Add, &[iv, one]);
        b.write_symbol(i2, i);
        let n = b.constant(4);
        let c = b.op(Opcode::Lt, &[i2, n]);
        b.branch(c, b1, b2);
        b.select(b2);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn cfg_dot_contains_all_blocks_and_edges() {
        let dot = cfg_dot(&looped());
        assert!(dot.starts_with("digraph"));
        for needle in ["bb0", "bb1", "bb2", "label=\"T\"", "label=\"F\"", "return"] {
            assert!(dot.contains(needle), "missing {needle} in:\n{dot}");
        }
        // Loop back-edge present.
        assert!(dot.contains("bb1 -> bb1"));
    }

    #[test]
    fn cdfg_dot_renders_ops_symbols_and_constants() {
        let dot = cdfg_dot(&looped());
        for needle in ["cluster_bb1", "add", "lt", "shape=diamond", "→i"] {
            assert!(dot.contains(needle), "missing {needle} in:\n{dot}");
        }
        // Data edge from the add to the compare.
        assert!(dot.contains("o1 -> o2"));
    }

    #[test]
    fn dot_is_balanced() {
        for dot in [cfg_dot(&looped()), cdfg_dot(&looped())] {
            let open = dot.matches('{').count();
            let close = dot.matches('}').count();
            assert_eq!(open, close);
        }
    }
}
