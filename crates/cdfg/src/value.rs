//! Data nodes (`Vd` in the paper) and symbol variables.

use std::fmt;

/// Identifier of a value (data node) within one [`crate::Cdfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a symbol variable (cross-block value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A symbol variable: a value carrying a dependency across basic blocks.
///
/// The mapper pins every symbol to one register-file slot on a *home tile*;
/// this is the "location constraint" of Section III-B whose routing cost
/// motivates the weighted traversal of Section III-D.1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Symbol {
    /// Human-readable name (e.g. the source variable `i`).
    pub name: String,
}

/// How a value comes into existence inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// An immediate constant, materialised from the tile's constant
    /// register file (CRF) — no producing operation.
    Const(i32),
    /// The value of a symbol variable at block entry (read from the
    /// symbol's home register-file slot).
    SymbolUse(SymbolId),
    /// The result of operation `0` of the owning block (see
    /// [`crate::dfg::Dfg`]); the `u32` is the operation index.
    Def(crate::dfg::OpId),
}

/// A data node: its id plus how it is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value {
    /// Identity of the node.
    pub id: ValueId,
    /// Producer kind.
    pub kind: ValueKind,
}

impl Value {
    /// The constant payload if this is a [`ValueKind::Const`].
    pub fn as_const(&self) -> Option<i32> {
        match self.kind {
            ValueKind::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The symbol if this is a [`ValueKind::SymbolUse`].
    pub fn as_symbol_use(&self) -> Option<SymbolId> {
        match self.kind {
            ValueKind::SymbolUse(s) => Some(s),
            _ => None,
        }
    }

    /// The defining operation if this is a [`ValueKind::Def`].
    pub fn as_def(&self) -> Option<crate::dfg::OpId> {
        match self.kind {
            ValueKind::Def(o) => Some(o),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::OpId;

    #[test]
    fn accessors_match_kind() {
        let c = Value {
            id: ValueId(0),
            kind: ValueKind::Const(7),
        };
        assert_eq!(c.as_const(), Some(7));
        assert_eq!(c.as_symbol_use(), None);
        assert_eq!(c.as_def(), None);

        let s = Value {
            id: ValueId(1),
            kind: ValueKind::SymbolUse(SymbolId(3)),
        };
        assert_eq!(s.as_symbol_use(), Some(SymbolId(3)));

        let d = Value {
            id: ValueId(2),
            kind: ValueKind::Def(OpId(9)),
        };
        assert_eq!(d.as_def(), Some(OpId(9)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ValueId(4).to_string(), "v4");
        assert_eq!(SymbolId(2).to_string(), "s2");
    }
}
