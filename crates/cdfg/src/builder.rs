//! Fluent construction of [`Cdfg`]s.

use crate::cdfg::{BasicBlock, BlockId, Cdfg, Terminator};
use crate::dfg::{AliasClass, Op, OpId};
use crate::op::Opcode;
use crate::validate::ValidateError;
use crate::value::{Symbol, SymbolId, Value, ValueId, ValueKind};

/// Builder for [`Cdfg`]s.
///
/// Typical use: declare blocks and symbols up front, then [`select`] each
/// block in turn and append its operations; finish with a terminator per
/// block and [`finish`], which validates the result.
///
/// Constants are interned per block (two `constant(3)` calls in the same
/// block return the same data node, matching a CRF entry); symbol uses are
/// interned per block as well (one read of the home register per block).
///
/// [`select`]: CdfgBuilder::select
/// [`finish`]: CdfgBuilder::finish
///
/// ```
/// use cmam_cdfg::{CdfgBuilder, Opcode};
/// let mut b = CdfgBuilder::new("axpy");
/// let bb = b.block("body");
/// b.select(bb);
/// let addr_x = b.constant(0);
/// let addr_y = b.constant(1);
/// let x = b.load_name(addr_x, "x");
/// let a = b.constant(3);
/// let ax = b.op(Opcode::Mul, &[a, x]);
/// b.store(addr_y, ax, "y");
/// b.ret();
/// let cdfg = b.finish()?;
/// assert_eq!(cdfg.total_ops(), 3);
/// # Ok::<(), cmam_cdfg::ValidateError>(())
/// ```
#[derive(Debug)]
pub struct CdfgBuilder {
    name: String,
    blocks: Vec<BasicBlock>,
    ops: Vec<Op>,
    values: Vec<Value>,
    value_block: Vec<BlockId>,
    symbols: Vec<Symbol>,
    alias_names: Vec<String>,
    current: Option<BlockId>,
    /// (block, constant) -> interned value id.
    const_cache: std::collections::HashMap<(BlockId, i32), ValueId>,
    /// (block, symbol) -> interned symbol-use value id.
    symuse_cache: std::collections::HashMap<(BlockId, SymbolId), ValueId>,
}

impl CdfgBuilder {
    /// Starts a new kernel.
    pub fn new(name: impl Into<String>) -> Self {
        CdfgBuilder {
            name: name.into(),
            blocks: Vec::new(),
            ops: Vec::new(),
            values: Vec::new(),
            value_block: Vec::new(),
            symbols: Vec::new(),
            alias_names: Vec::new(),
            current: None,
            const_cache: std::collections::HashMap::new(),
            symuse_cache: std::collections::HashMap::new(),
        }
    }

    /// Declares a basic block. The first declared block is the entry.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            id,
            name: name.into(),
            ops: Vec::new(),
            terminator: None,
        });
        if self.current.is_none() {
            self.current = Some(id);
        }
        id
    }

    /// Declares a symbol variable.
    pub fn symbol(&mut self, name: impl Into<String>) -> SymbolId {
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(Symbol { name: name.into() });
        id
    }

    /// Selects the block subsequent operations are appended to.
    ///
    /// # Panics
    ///
    /// Panics if the block does not exist.
    pub fn select(&mut self, block: BlockId) {
        assert!(
            (block.0 as usize) < self.blocks.len(),
            "unknown block {block}"
        );
        self.current = Some(block);
    }

    fn current(&self) -> BlockId {
        self.current.expect("no block selected")
    }

    fn new_value(&mut self, kind: ValueKind, block: BlockId) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(Value { id, kind });
        self.value_block.push(block);
        id
    }

    /// An immediate constant usable in the current block (interned).
    pub fn constant(&mut self, c: i32) -> ValueId {
        let bb = self.current();
        if let Some(&v) = self.const_cache.get(&(bb, c)) {
            return v;
        }
        let v = self.new_value(ValueKind::Const(c), bb);
        self.const_cache.insert((bb, c), v);
        v
    }

    /// The value of symbol `s` at entry of the current block (interned).
    pub fn use_symbol(&mut self, s: SymbolId) -> ValueId {
        let bb = self.current();
        if let Some(&v) = self.symuse_cache.get(&(bb, s)) {
            return v;
        }
        let v = self.new_value(ValueKind::SymbolUse(s), bb);
        self.symuse_cache.insert((bb, s), v);
        v
    }

    fn push_op(
        &mut self,
        opcode: Opcode,
        args: &[ValueId],
        alias: Option<AliasClass>,
    ) -> (OpId, Option<ValueId>) {
        assert_eq!(
            args.len(),
            opcode.arity(),
            "{opcode} expects {} operands, got {}",
            opcode.arity(),
            args.len()
        );
        let bb = self.current();
        let id = OpId(self.ops.len() as u32);
        let result = if opcode.has_result() {
            Some(self.new_value(ValueKind::Def(id), bb))
        } else {
            None
        };
        self.ops.push(Op {
            id,
            block: bb,
            opcode,
            args: args.to_vec(),
            result,
            writes_symbol: None,
            alias,
        });
        self.blocks[bb.0 as usize].ops.push(id);
        (id, result)
    }

    /// Appends a pure ALU operation and returns its result value.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, on memory/branch opcodes (use [`load`],
    /// [`store`], [`branch`]), or if no block is selected.
    ///
    /// [`load`]: CdfgBuilder::load
    /// [`store`]: CdfgBuilder::store
    /// [`branch`]: CdfgBuilder::branch
    pub fn op(&mut self, opcode: Opcode, args: &[ValueId]) -> ValueId {
        assert!(
            !opcode.is_memory() && !opcode.is_branch(),
            "use the dedicated builder method for {opcode}"
        );
        self.push_op(opcode, args, None)
            .1
            .expect("ALU ops produce results")
    }

    /// Interns an alias class by name.
    pub fn alias_class(&mut self, name: &str) -> AliasClass {
        if let Some(i) = self.alias_names.iter().position(|n| n == name) {
            return AliasClass(i as u32);
        }
        self.alias_names.push(name.to_owned());
        AliasClass((self.alias_names.len() - 1) as u32)
    }

    /// Appends a load from word address `addr` within `class`.
    pub fn load(&mut self, addr: ValueId, class: AliasClass) -> ValueId {
        self.push_op(Opcode::Load, &[addr], Some(class))
            .1
            .expect("loads produce results")
    }

    /// [`load`](CdfgBuilder::load) with the class given by name.
    pub fn load_name(&mut self, addr: ValueId, class: &str) -> ValueId {
        let c = self.alias_class(class);
        self.load(addr, c)
    }

    /// Appends a store of `value` to word address `addr` within `class`
    /// (given by name).
    pub fn store(&mut self, addr: ValueId, value: ValueId, class: &str) {
        let c = self.alias_class(class);
        self.push_op(Opcode::Store, &[addr, value], Some(c));
    }

    /// Marks `value` as the new contents of symbol `s` at exit of the
    /// current block.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not produced by an operation of the current
    /// block (constants / symbol uses must be copied through a `mov`
    /// first — [`mov_const_to_symbol`] and [`mov_to_symbol`] do that), or
    /// if the symbol is already written in this block.
    ///
    /// [`mov_const_to_symbol`]: CdfgBuilder::mov_const_to_symbol
    /// [`mov_to_symbol`]: CdfgBuilder::mov_to_symbol
    pub fn write_symbol(&mut self, value: ValueId, s: SymbolId) {
        let bb = self.current();
        let def = match self.values[value.0 as usize].kind {
            ValueKind::Def(op) if self.ops[op.0 as usize].block == bb => op,
            _ => panic!("symbol writes must come from an op of the current block"),
        };
        assert!(
            !self.blocks[bb.0 as usize]
                .ops
                .iter()
                .any(|&o| self.ops[o.0 as usize].writes_symbol == Some(s)),
            "symbol {s} written twice in {bb}"
        );
        self.ops[def.0 as usize].writes_symbol = Some(s);
    }

    /// Emits `mov` of a constant and writes it to symbol `s` (the usual way
    /// to initialise induction variables / accumulators).
    pub fn mov_const_to_symbol(&mut self, c: i32, s: SymbolId) {
        let cv = self.constant(c);
        let v = self.op(Opcode::Mov, &[cv]);
        self.write_symbol(v, s);
    }

    /// Emits `mov` of an arbitrary value and writes it to symbol `s`.
    pub fn mov_to_symbol(&mut self, value: ValueId, s: SymbolId) {
        let v = self.op(Opcode::Mov, &[value]);
        self.write_symbol(v, s);
    }

    fn terminate(&mut self, t: Terminator) {
        let bb = self.current();
        let slot = &mut self.blocks[bb.0 as usize].terminator;
        assert!(slot.is_none(), "block {bb} already terminated");
        *slot = Some(t);
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, to: BlockId) {
        self.terminate(Terminator::Jump(to));
    }

    /// Appends the `br` operation consuming `cond` and terminates the
    /// current block with a two-way branch.
    pub fn branch(&mut self, cond: ValueId, taken: BlockId, fallthrough: BlockId) {
        let (op, _) = self.push_op(Opcode::Br, &[cond], None);
        self.terminate(Terminator::Branch {
            op,
            taken,
            fallthrough,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self) {
        self.terminate(Terminator::Return);
    }

    /// Validates and returns the finished CDFG.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] describing the first structural problem
    /// (unterminated block, dangling reference, cross-block SSA use, …).
    pub fn finish(self) -> Result<Cdfg, ValidateError> {
        let entry = self
            .blocks
            .first()
            .map(|b| b.id)
            .ok_or(ValidateError::Empty)?;
        let cdfg = Cdfg {
            name: self.name,
            blocks: self.blocks,
            ops: self.ops,
            values: self.values,
            value_block: self.value_block,
            symbols: self.symbols,
            alias_names: self.alias_names,
            entry,
        };
        cdfg.validate()?;
        Ok(cdfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_interned_per_block() {
        let mut b = CdfgBuilder::new("t");
        let b0 = b.block("b0");
        let b1 = b.block("b1");
        b.select(b0);
        let a = b.constant(7);
        let a2 = b.constant(7);
        assert_eq!(a, a2);
        let r = b.op(Opcode::Add, &[a, a2]);
        let _keep = r;
        b.jump(b1);
        b.select(b1);
        let c = b.constant(7);
        assert_ne!(a, c, "different blocks intern separately");
        let z = b.constant(0);
        let m = b.op(Opcode::Add, &[c, z]);
        b.store(z, m, "out");
        b.ret();
        b.finish().unwrap();
    }

    #[test]
    fn symbol_uses_are_interned() {
        let mut b = CdfgBuilder::new("t");
        let b0 = b.block("b0");
        let s = b.symbol("x");
        b.select(b0);
        b.mov_const_to_symbol(1, s);
        let u1 = b.use_symbol(s);
        let u2 = b.use_symbol(s);
        assert_eq!(u1, u2);
        b.ret();
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn double_symbol_write_panics() {
        let mut b = CdfgBuilder::new("t");
        let _b0 = b.block("b0");
        let s = b.symbol("x");
        b.mov_const_to_symbol(1, s);
        b.mov_const_to_symbol(2, s);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut b = CdfgBuilder::new("t");
        let _ = b.block("b0");
        b.ret();
        b.ret();
    }

    #[test]
    #[should_panic(expected = "must come from an op")]
    fn symbol_write_of_constant_panics() {
        let mut b = CdfgBuilder::new("t");
        let _ = b.block("b0");
        let s = b.symbol("x");
        let c = b.constant(1);
        b.write_symbol(c, s);
    }

    #[test]
    fn empty_cdfg_is_rejected() {
        let b = CdfgBuilder::new("t");
        assert!(matches!(b.finish(), Err(ValidateError::Empty)));
    }
}
