//! Seeded, parameterised CDFG workload generation.
//!
//! Every scaling and correctness claim in this repository used to rest on
//! the seven hand-written kernels. This module turns the pipeline into a
//! differentially-testable system over *hundreds* of structurally diverse
//! kernels: [`generate`] deterministically derives a complete kernel — a
//! [`Cdfg`] **valid by construction** (it always passes [`Cdfg::validate`])
//! plus an input-memory image — from a `(GenParams, seed)` pair.
//!
//! Design constraints, all guaranteed by construction:
//!
//! * **Termination.** Control flow is built from structured regions
//!   (straight-line blocks, if/else diamonds, counted loops with a private
//!   induction symbol and a bounded trip count), so every generated kernel
//!   terminates in the interpreter and the simulator.
//! * **Memory safety & honest aliasing.** `mem_words` is rounded up to a
//!   power of two and every data-dependent address is masked into its
//!   alias class's private region (`heap0` owns the first quarter of the
//!   image, `heap1` the second, the final `out` store the last word), so
//!   accesses are always in bounds *and* distinct alias classes really
//!   never touch the same word — the class annotation licenses the
//!   scheduler to reorder across classes, so a dishonest one would make
//!   the generated kernel's semantics schedule-dependent.
//! * **Determinism.** Generation consumes a private splitmix64 stream and
//!   touches no hash-map iteration order, clocks or ambient state: the same
//!   `(GenParams, seed)` yields a byte-identical kernel on every thread
//!   count, every run, every process (pinned by the generator-determinism
//!   suite).
//!
//! The [`GenParams`] knob set spans the axes the differential harness
//! sweeps: op count, op mix (including load/store density), block count
//! and branch shape, fan-out/depth profile, and symbol pressure. Named
//! [`GenParams::profile`]s pin interesting corners — including the
//! memory-intensive and edge shapes the seven paper kernels never hit
//! (single-block, load/store-only, maximum fan-out, zero-symbol).

use crate::builder::CdfgBuilder;
use crate::cdfg::Cdfg;
use crate::op::Opcode;
use crate::value::{SymbolId, ValueId};

/// How operand reuse picks among a block's existing results — the
/// fan-out / depth ("mobility") profile of the generated data flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fanout {
    /// Pick uniformly among all earlier results: wide graphs, moderate
    /// fan-out, high mobility.
    Uniform,
    /// Pick among the few most recent results: deep dependence chains,
    /// low mobility (the shapes exact-mapping work stresses).
    Recent,
    /// Always pick the block's first result: one value feeding almost
    /// every consumer — the maximum-fan-out edge shape.
    Focus,
}

/// Generator knobs. Construct via [`GenParams::default`] or a named
/// [`GenParams::profile`], then adjust fields; [`generate`] sanitises the
/// values (percentages clamped, `mem_words` rounded to a power of two,
/// zero counts bumped to one) so any knob setting produces a valid kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenParams {
    /// Short label folded into the kernel name (`gen-<label>-<seed>`),
    /// usually the profile name.
    pub label: String,
    /// Target number of basic blocks (regions are appended until this is
    /// reached; diamonds and loops add several blocks at once).
    pub blocks: usize,
    /// Target operation count per block body (each body samples around
    /// this value).
    pub ops_per_block: usize,
    /// Percentage of region choices that become a counted loop.
    pub loop_pct: u32,
    /// Percentage of region choices that become an if/else diamond.
    pub diamond_pct: u32,
    /// Percentage of op slots that become a `load` (with generated
    /// address computation).
    pub load_pct: u32,
    /// Percentage of op slots that become a `store`.
    pub store_pct: u32,
    /// Number of cross-block symbol variables (the register-file /
    /// home-tile pressure knob). Loop induction counters are extra.
    pub symbols: usize,
    /// Percentage chance, per result-producing op, of latching the result
    /// into a not-yet-written symbol at block exit.
    pub sym_write_pct: u32,
    /// Percentage chance an operand reuses an earlier result of the block
    /// (the rest are fresh constants or symbol reads).
    pub reuse_pct: u32,
    /// Fan-out / depth profile of operand reuse.
    pub fanout: Fanout,
    /// Loop trip counts are drawn from `1..=max_trip`.
    pub max_trip: u32,
    /// Data-memory size in words (rounded up to a power of two, min 8).
    pub mem_words: usize,
    /// Constants are drawn from `-const_range..=const_range`.
    pub const_range: i32,
}

impl Default for GenParams {
    /// A mid-size mixed kernel in the ballpark of the paper's seven.
    fn default() -> Self {
        GenParams {
            label: "default".to_owned(),
            blocks: 5,
            ops_per_block: 10,
            loop_pct: 30,
            diamond_pct: 30,
            load_pct: 15,
            store_pct: 10,
            symbols: 4,
            sym_write_pct: 35,
            reuse_pct: 70,
            fanout: Fanout::Uniform,
            max_trip: 6,
            mem_words: 64,
            const_range: 32,
        }
    }
}

impl GenParams {
    /// Every named profile, in the order `mixed` sweeps cycle through.
    pub const PROFILES: [&'static str; 9] = [
        "default",
        "memory_bound",
        "deep",
        "branchy",
        "wide",
        "single_block",
        "load_store_only",
        "max_fanout",
        "zero_symbol",
    ];

    /// A named parameter profile, or `None` for an unknown name.
    ///
    /// The profiles cover the axes the differential harness cares about:
    /// `memory_bound` (the load/store-heavy shapes of the memory-bound
    /// CGRA literature), `deep` (long dependence chains, low mobility),
    /// `branchy` (control-heavy), `wide` (flat, parallel data flow), and
    /// the four edge shapes the seven hand-written kernels never produce:
    /// `single_block`, `load_store_only`, `max_fanout`, `zero_symbol`.
    pub fn profile(name: &str) -> Option<GenParams> {
        let mut p = GenParams {
            label: name.to_owned(),
            ..GenParams::default()
        };
        match name {
            "default" => {}
            "memory_bound" => {
                p.load_pct = 35;
                p.store_pct = 25;
                p.ops_per_block = 12;
            }
            "deep" => {
                p.blocks = 3;
                p.ops_per_block = 18;
                p.reuse_pct = 90;
                p.fanout = Fanout::Recent;
                p.load_pct = 8;
                p.store_pct = 5;
            }
            "branchy" => {
                p.blocks = 10;
                p.ops_per_block = 4;
                p.diamond_pct = 55;
                p.loop_pct = 25;
            }
            "wide" => {
                p.blocks = 2;
                p.ops_per_block = 20;
                p.reuse_pct = 45;
                p.fanout = Fanout::Uniform;
            }
            "single_block" => {
                p.blocks = 1;
                p.ops_per_block = 16;
            }
            "load_store_only" => {
                p.load_pct = 50;
                p.store_pct = 50;
                p.ops_per_block = 12;
                p.symbols = 1;
                p.sym_write_pct = 0;
            }
            "max_fanout" => {
                p.blocks = 2;
                p.ops_per_block = 16;
                p.reuse_pct = 85;
                p.fanout = Fanout::Focus;
            }
            "zero_symbol" => {
                p.symbols = 0;
                p.sym_write_pct = 0;
                p.loop_pct = 0; // loops need induction symbols
                p.diamond_pct = 45;
            }
            _ => return None,
        }
        Some(p)
    }

    /// The same parameters with every knob forced into its valid range
    /// (what [`generate`] actually consumes).
    pub fn sanitized(&self) -> GenParams {
        let mut p = self.clone();
        p.blocks = p.blocks.clamp(1, 64);
        p.ops_per_block = p.ops_per_block.clamp(1, 48);
        p.loop_pct = p.loop_pct.min(100);
        p.diamond_pct = p.diamond_pct.min(100 - p.loop_pct.min(100));
        p.load_pct = p.load_pct.min(100);
        p.store_pct = p.store_pct.min(100 - p.load_pct);
        p.symbols = p.symbols.min(16);
        p.sym_write_pct = p.sym_write_pct.min(100);
        p.reuse_pct = p.reuse_pct.min(100);
        p.max_trip = p.max_trip.clamp(1, 32);
        p.mem_words = p.mem_words.clamp(8, 1 << 16).next_power_of_two();
        p.const_range = p.const_range.clamp(1, 1 << 20);
        p
    }
}

/// A complete generated kernel: the CDFG plus the input-memory image it
/// is meant to execute over. The expected output is *not* carried here —
/// the reference interpreter defines it (see `cmam_kernels::generated`).
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedKernel {
    /// Kernel name: `gen-<label>-<seed as 16 hex digits>`.
    pub name: String,
    /// The generated CDFG (always passes [`Cdfg::validate`]).
    pub cdfg: Cdfg,
    /// Generator-produced initial data-memory image (`mem_words` long).
    pub mem: Vec<i32>,
}

/// Private splitmix64 stream: dependency-free, stable across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Pre-mix so seed 0 and seed 1 diverge immediately.
        let mut r = Rng(seed ^ 0x9e37_79b9_7f4a_7c15);
        r.next();
        r
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// True with probability `pct`/100.
    fn pct(&mut self, pct: u32) -> bool {
        self.below(100) < pct as u64
    }

    /// Uniform in `-range..=range`.
    fn imm(&mut self, range: i32) -> i32 {
        (self.below(2 * range as u64 + 1) as i64 - range as i64) as i32
    }
}

/// A deterministic input memory image for lane `lane` of an input sweep:
/// `len` words uniform in `-range..=range`, from the same splitmix64
/// stream family as [`generate`] (platform-stable, dependency-free).
/// `(seed, lane)` fully determines the image, so sweeps, benches and
/// property tests can all regenerate the exact same inputs from two
/// integers.
pub fn input_image(seed: u64, lane: u64, len: usize, range: i32) -> Vec<i32> {
    // Mix the lane into the seed with an odd multiplier so consecutive
    // lanes land on unrelated streams.
    let mut rng = Rng::new(seed ^ lane.wrapping_mul(0xa076_1d64_78bd_642f));
    (0..len).map(|_| rng.imm(range)).collect()
}

/// The weighted ALU-op mix (repetition = weight): arithmetic-heavy like
/// the paper kernels, with compares, `select` and `mov` sprinkled in.
const ALU_MIX: [Opcode; 24] = [
    Opcode::Add,
    Opcode::Add,
    Opcode::Add,
    Opcode::Add,
    Opcode::Sub,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Mul,
    Opcode::Mul,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Min,
    Opcode::Max,
    Opcode::Abs,
    Opcode::Eq,
    Opcode::Ne,
    Opcode::Lt,
    Opcode::Le,
    Opcode::Gt,
    Opcode::Select,
    Opcode::Mov,
];

/// Per-block generation state: the results produced so far (the only
/// values operand reuse draws from — constants and symbol reads are
/// interned by the builder and re-picked fresh) and the symbols already
/// latched in this block.
struct BlockCtx {
    defs: Vec<ValueId>,
    written: Vec<SymbolId>,
}

impl BlockCtx {
    fn new() -> Self {
        BlockCtx {
            defs: Vec::new(),
            written: Vec::new(),
        }
    }
}

fn pick_operand(
    b: &mut CdfgBuilder,
    rng: &mut Rng,
    p: &GenParams,
    syms: &[SymbolId],
    ctx: &BlockCtx,
) -> ValueId {
    if !ctx.defs.is_empty() && rng.pct(p.reuse_pct) {
        let i = match p.fanout {
            Fanout::Focus => 0,
            Fanout::Uniform => rng.below(ctx.defs.len() as u64) as usize,
            Fanout::Recent => {
                let window = ctx.defs.len().min(3) as u64;
                ctx.defs.len() - 1 - rng.below(window) as usize
            }
        };
        ctx.defs[i]
    } else if !syms.is_empty() && rng.pct(40) {
        let s = syms[rng.below(syms.len() as u64) as usize];
        b.use_symbol(s)
    } else {
        let c = rng.imm(p.const_range);
        b.constant(c)
    }
}

/// An always-in-bounds word address confined to `[base, base + size)`:
/// either a constant, or a data-dependent value masked into the region
/// (the extra `And`/`Add` ops are address computation — part of the
/// workload, as in real kernels). `size` is a power of two.
///
/// Confinement is what keeps alias classes honest: a class annotation is
/// a *promise* that two classes never touch the same word (the scheduler
/// is free to reorder memory ops across classes), so each class owns a
/// disjoint address region.
fn gen_addr(
    b: &mut CdfgBuilder,
    rng: &mut Rng,
    p: &GenParams,
    syms: &[SymbolId],
    ctx: &mut BlockCtx,
    base: usize,
    size: usize,
) -> ValueId {
    if ctx.defs.is_empty() || rng.pct(50) {
        b.constant((base + rng.below(size as u64) as usize) as i32)
    } else {
        let x = pick_operand(b, rng, p, syms, ctx);
        let mask = b.constant(size as i32 - 1);
        let mut a = b.op(Opcode::And, &[x, mask]);
        ctx.defs.push(a);
        if base > 0 {
            let off = b.constant(base as i32);
            a = b.op(Opcode::Add, &[a, off]);
            ctx.defs.push(a);
        }
        a
    }
}

/// Appends a sampled body of operations to the currently selected block.
fn fill_block(
    b: &mut CdfgBuilder,
    rng: &mut Rng,
    p: &GenParams,
    syms: &[SymbolId],
    ctx: &mut BlockCtx,
) {
    // Sample around the target: ops_per_block/2 ..= 3*ops_per_block/2.
    let lo = (p.ops_per_block / 2).max(1);
    let n = lo + rng.below((p.ops_per_block + 1) as u64) as usize;
    // Each alias class owns a quarter of the address space (the final
    // `out` store owns the last word, outside both regions).
    let q = p.mem_words / 4;
    let region = |cls: bool| if cls { ("heap1", q) } else { ("heap0", 0) };
    for _ in 0..n {
        let roll = rng.below(100) as u32;
        let result = if roll < p.load_pct {
            let (class, base) = region(rng.pct(50));
            let addr = gen_addr(b, rng, p, syms, ctx, base, q);
            Some(b.load_name(addr, class))
        } else if roll < p.load_pct + p.store_pct {
            let (class, base) = region(rng.pct(50));
            let addr = gen_addr(b, rng, p, syms, ctx, base, q);
            let val = pick_operand(b, rng, p, syms, ctx);
            b.store(addr, val, class);
            None
        } else {
            let opcode = ALU_MIX[rng.below(ALU_MIX.len() as u64) as usize];
            let args: Vec<ValueId> = (0..opcode.arity())
                .map(|_| pick_operand(b, rng, p, syms, ctx))
                .collect();
            Some(b.op(opcode, &args))
        };
        if let Some(v) = result {
            ctx.defs.push(v);
            if rng.pct(p.sym_write_pct) {
                let free: Vec<SymbolId> = syms
                    .iter()
                    .copied()
                    .filter(|s| !ctx.written.contains(s))
                    .collect();
                if !free.is_empty() {
                    let s = free[rng.below(free.len() as u64) as usize];
                    b.write_symbol(v, s);
                    ctx.written.push(s);
                }
            }
        }
    }
}

/// A branch condition computed in the currently selected block: a compare
/// of a symbol read (or an existing result, or a constant) against a
/// constant.
fn gen_cond(
    b: &mut CdfgBuilder,
    rng: &mut Rng,
    p: &GenParams,
    syms: &[SymbolId],
    ctx: &mut BlockCtx,
) -> ValueId {
    let x = pick_operand(b, rng, p, syms, ctx);
    let k = b.constant(rng.imm(p.const_range));
    let cmp = [Opcode::Lt, Opcode::Le, Opcode::Gt, Opcode::Ge, Opcode::Eq][rng.below(5) as usize];
    let c = b.op(cmp, &[x, k]);
    ctx.defs.push(c);
    c
}

/// Deterministically generates one kernel from `(params, seed)`.
///
/// The returned CDFG always validates, always terminates, and never
/// accesses memory outside its `mem` image — see the module docs for how
/// each guarantee is met. Two calls with equal inputs return equal
/// outputs (`GeneratedKernel` implements `PartialEq` over the full graph).
pub fn generate(params: &GenParams, seed: u64) -> GeneratedKernel {
    let p = params.sanitized();
    let mut rng = Rng::new(seed);
    let name = format!("gen-{}-{seed:016x}", p.label);
    let mut b = CdfgBuilder::new(name.clone());

    let entry = b.block("entry");
    let syms: Vec<SymbolId> = (0..p.symbols).map(|i| b.symbol(format!("g{i}"))).collect();

    // Entry: initialise a few symbols so symbol reads see varied data.
    b.select(entry);
    let mut ctx = BlockCtx::new();
    for &s in &syms {
        if rng.pct(70) {
            b.mov_const_to_symbol(rng.imm(p.const_range), s);
            ctx.written.push(s);
        }
    }
    fill_block(&mut b, &mut rng, &p, &syms, &mut ctx);

    // Append structured regions until the block budget is spent.
    let mut blocks_made = 1usize;
    let mut loops_made = 0usize;
    while blocks_made < p.blocks {
        let roll = rng.below(100) as u32;
        if roll < p.loop_pct && blocks_made + 2 <= p.blocks {
            // Counted loop: the current block initialises a fresh private
            // counter, the body increments it and branches back until the
            // trip count.
            let ctr = b.symbol(format!("L{loops_made}"));
            b.mov_const_to_symbol(0, ctr);
            let body = b.block(format!("loop{loops_made}"));
            let exit = b.block(format!("endl{loops_made}"));
            b.jump(body);
            b.select(body);
            let mut bctx = BlockCtx::new();
            fill_block(&mut b, &mut rng, &p, &syms, &mut bctx);
            let iv = b.use_symbol(ctr);
            let one = b.constant(1);
            let inext = b.op(Opcode::Add, &[iv, one]);
            b.write_symbol(inext, ctr);
            let trip = b.constant(1 + rng.below(p.max_trip as u64) as i32);
            let c = b.op(Opcode::Lt, &[inext, trip]);
            b.branch(c, body, exit);
            b.select(exit);
            let mut ectx = BlockCtx::new();
            fill_block(&mut b, &mut rng, &p, &syms, &mut ectx);
            ctx = ectx;
            blocks_made += 2;
            loops_made += 1;
        } else if roll < p.loop_pct + p.diamond_pct && blocks_made + 3 <= p.blocks {
            // If/else diamond: cur computes the condition, both arms run
            // a body and join.
            let cond = gen_cond(&mut b, &mut rng, &p, &syms, &mut ctx);
            let then_b = b.block(format!("then{blocks_made}"));
            let else_b = b.block(format!("else{blocks_made}"));
            let join = b.block(format!("join{blocks_made}"));
            b.branch(cond, then_b, else_b);
            for arm in [then_b, else_b] {
                b.select(arm);
                let mut actx = BlockCtx::new();
                fill_block(&mut b, &mut rng, &p, &syms, &mut actx);
                b.jump(join);
            }
            b.select(join);
            let mut jctx = BlockCtx::new();
            fill_block(&mut b, &mut rng, &p, &syms, &mut jctx);
            ctx = jctx;
            blocks_made += 3;
        } else {
            // Straight-line successor.
            let next = b.block(format!("bb{blocks_made}"));
            b.jump(next);
            b.select(next);
            let mut nctx = BlockCtx::new();
            fill_block(&mut b, &mut rng, &p, &syms, &mut nctx);
            ctx = nctx;
            blocks_made += 1;
        }
    }

    // Guaranteed observable output: store a final value to the last word.
    let out_val = if !ctx.defs.is_empty() {
        ctx.defs[ctx.defs.len() - 1]
    } else if !syms.is_empty() {
        b.use_symbol(syms[0])
    } else {
        b.constant(rng.imm(p.const_range))
    };
    let out_addr = b.constant(p.mem_words as i32 - 1);
    b.store(out_addr, out_val, "out");
    b.ret();

    let cdfg = b
        .finish()
        .expect("generated CDFGs are valid by construction");

    // Input image: a private deterministic fill (small values, so long
    // multiply chains stay interesting without saturating).
    let mut mem = Vec::with_capacity(p.mem_words);
    for _ in 0..p.mem_words {
        mem.push(rng.imm(64));
    }

    GeneratedKernel { name, cdfg, mem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;

    fn profiles() -> Vec<GenParams> {
        GenParams::PROFILES
            .iter()
            .map(|n| GenParams::profile(n).expect("known profile"))
            .collect()
    }

    #[test]
    fn every_profile_generates_valid_terminating_kernels() {
        for p in profiles() {
            for seed in 0..8u64 {
                let g = generate(&p, seed);
                g.cdfg
                    .validate()
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", p.label));
                let mut mem = g.mem.clone();
                let stats = interp::run(&g.cdfg, &mut mem, 1_000_000)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", p.label));
                assert!(stats.dynamic_ops > 0, "{} seed {seed} ran nothing", p.label);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for p in profiles() {
            let a = generate(&p, 42);
            let b = generate(&p, 42);
            assert_eq!(a, b, "profile {} not deterministic", p.label);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = GenParams::default();
        let a = generate(&p, 1);
        let b = generate(&p, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn unknown_profile_is_none_and_all_names_resolve() {
        assert!(GenParams::profile("nope").is_none());
        for n in GenParams::PROFILES {
            assert!(GenParams::profile(n).is_some(), "{n}");
        }
    }

    #[test]
    fn single_block_profile_really_is_single_block() {
        let p = GenParams::profile("single_block").unwrap();
        for seed in 0..16u64 {
            assert_eq!(generate(&p, seed).cdfg.num_blocks(), 1);
        }
    }

    #[test]
    fn zero_symbol_profile_declares_no_symbols() {
        let p = GenParams::profile("zero_symbol").unwrap();
        for seed in 0..16u64 {
            assert_eq!(generate(&p, seed).cdfg.num_symbols(), 0);
        }
    }

    #[test]
    fn load_store_only_profile_is_memory_dominated() {
        let p = GenParams::profile("load_store_only").unwrap();
        let g = generate(&p, 7);
        let mut mem_ops = 0usize;
        let mut total = 0usize;
        for blk in g.cdfg.block_ids() {
            for op in g.cdfg.dfg(blk).ops() {
                total += 1;
                if op.opcode.is_memory() {
                    mem_ops += 1;
                }
            }
        }
        assert!(
            mem_ops * 2 >= total,
            "memory ops {mem_ops} of {total} is not dominated"
        );
    }

    #[test]
    fn sanitize_rounds_memory_to_power_of_two() {
        let mut p = GenParams::default();
        p.mem_words = 100;
        assert_eq!(p.sanitized().mem_words, 128);
        p.mem_words = 0;
        assert_eq!(p.sanitized().mem_words, 8);
    }

    #[test]
    fn max_trip_is_honoured_by_termination_budget() {
        // A loop-heavy profile with the largest trip count still
        // terminates well inside the budget.
        let mut p = GenParams::default();
        p.loop_pct = 80;
        p.diamond_pct = 0;
        p.blocks = 21;
        p.max_trip = 32;
        let g = generate(&p, 3);
        let mut mem = g.mem.clone();
        interp::run(&g.cdfg, &mut mem, 1_000_000).expect("terminates");
    }
}
