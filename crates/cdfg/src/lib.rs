//! # cmam-cdfg — Control Data Flow Graph IR
//!
//! The application representation mapped onto the CGRA, following
//! Section III-A of the paper: a CDFG `C = (V, E)` whose nodes are basic
//! blocks and whose edges are control flow; each basic block holds a
//! bipartite data-flow graph `b = (Vd, Vo, E)` of data nodes and operation
//! nodes.
//!
//! Cross-block values are **symbol variables** ([`Symbol`]): named storage
//! locations that the mapper pins to a register-file slot of a *home tile*
//! ("the symbol variables are always placed into the register file rather
//! than spilling into the memory"). Within a block, values are in SSA form.
//!
//! The crate provides:
//!
//! * the IR itself ([`Cdfg`], [`BasicBlock`], [`Dfg`], [`Op`], [`Value`]);
//! * a fluent [`CdfgBuilder`] used by `cmam-kernels` and the examples;
//! * structural validation ([`Cdfg::validate`]);
//! * per-block analyses ([`analysis`]): ASAP/ALAP schedules, mobility,
//!   fan-outs, memory-order edges and the block weight
//!   `Wbb = n(s) + Σ f_s` driving the paper's weighted traversal;
//! * a reference interpreter ([`interp`]) providing golden outputs for the
//!   CGRA simulator and the execution trace for the CPU baseline model.
//!
//! ```
//! use cmam_cdfg::{CdfgBuilder, Opcode};
//!
//! // acc = 0; for i in 0..4 { acc += i }; mem[0] = acc
//! let mut b = CdfgBuilder::new("sum");
//! let entry = b.block("entry");
//! let body = b.block("body");
//! let exit = b.block("exit");
//! let i = b.symbol("i");
//! let acc = b.symbol("acc");
//!
//! b.select(entry);
//! b.mov_const_to_symbol(0, i);
//! b.mov_const_to_symbol(0, acc);
//! b.jump(body);
//!
//! b.select(body);
//! let iv = b.use_symbol(i);
//! let av = b.use_symbol(acc);
//! let sum = b.op(Opcode::Add, &[av, iv]);
//! b.write_symbol(sum, acc);
//! let c1 = b.constant(1);
//! let inext = b.op(Opcode::Add, &[iv, c1]);
//! b.write_symbol(inext, i);
//! let n = b.constant(4);
//! let cond = b.op(Opcode::Lt, &[inext, n]);
//! b.branch(cond, body, exit);
//!
//! b.select(exit);
//! let a2 = b.use_symbol(acc);
//! let addr = b.constant(0);
//! b.store(addr, a2, "out");
//! b.ret();
//!
//! let cdfg = b.finish()?;
//! let mut mem = vec![0i32; 4];
//! cmam_cdfg::interp::run(&cdfg, &mut mem, 10_000)?;
//! assert_eq!(mem[0], 0 + 1 + 2 + 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod builder;
pub mod cdfg;
pub mod dfg;
pub mod dot;
pub mod generate;
pub mod interp;
pub mod op;
pub mod validate;
pub mod value;

pub use builder::CdfgBuilder;
pub use cdfg::{BasicBlock, BlockId, Cdfg, Terminator};
pub use dfg::{Dfg, Op, OpId};
pub use generate::{generate, input_image, Fanout, GenParams, GeneratedKernel};
pub use interp::{InterpError, InterpStats};
pub use op::Opcode;
pub use validate::ValidateError;
pub use value::{Symbol, SymbolId, Value, ValueId, ValueKind};
