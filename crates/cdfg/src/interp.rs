//! Reference interpreter: the golden execution model.
//!
//! Executes a [`Cdfg`] sequentially over a flat word-addressed data memory.
//! Both the CGRA simulator (`cmam-sim`) and the CPU baseline (`cmam-cpu`)
//! are checked against this interpreter — a mapped, assembled and simulated
//! kernel must leave memory in exactly the state the interpreter produces.

use crate::cdfg::{BlockId, Cdfg, Terminator};
use crate::op::Opcode;
use crate::value::{SymbolId, ValueId, ValueKind};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Failure during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A load or store addressed a word outside the memory.
    OutOfBounds {
        /// The offending address (in words).
        addr: i64,
        /// Memory size in words.
        size: usize,
    },
    /// The dynamic operation budget was exhausted (likely a non-terminating
    /// loop).
    StepLimit(u64),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds { addr, size } => {
                write!(f, "memory access at word {addr} outside size {size}")
            }
            InterpError::StepLimit(n) => write!(f, "step limit of {n} dynamic ops exhausted"),
        }
    }
}

impl Error for InterpError {}

/// Dynamic execution statistics, consumed by the CPU baseline model and by
/// tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Dynamic operation count (all opcodes).
    pub dynamic_ops: u64,
    /// How many times each block executed.
    pub block_counts: HashMap<BlockId, u64>,
    /// Dynamic count per opcode.
    pub op_counts: HashMap<Opcode, u64>,
    /// Dynamic loads.
    pub mem_reads: u64,
    /// Dynamic stores.
    pub mem_writes: u64,
    /// Dynamic taken/total conditional branches.
    pub branches: u64,
}

impl InterpStats {
    /// Dynamic count of one opcode.
    pub fn count(&self, op: Opcode) -> u64 {
        self.op_counts.get(&op).copied().unwrap_or(0)
    }
}

/// Runs `cdfg` over `mem` until `Return`, or fails after `max_ops` dynamic
/// operations.
///
/// Symbols start at 0. Addresses are word indices into `mem`.
///
/// # Errors
///
/// [`InterpError::OutOfBounds`] on a bad memory access,
/// [`InterpError::StepLimit`] if the kernel does not terminate within the
/// budget.
pub fn run(cdfg: &Cdfg, mem: &mut [i32], max_ops: u64) -> Result<InterpStats, InterpError> {
    let mut stats = InterpStats::default();
    let mut symbols: HashMap<SymbolId, i32> = HashMap::new();
    let mut block = cdfg.entry();

    loop {
        *stats.block_counts.entry(block).or_insert(0) += 1;
        let bb = cdfg.block(block);
        let mut env: HashMap<ValueId, i32> = HashMap::new();
        let read =
            |env: &HashMap<ValueId, i32>, symbols: &HashMap<SymbolId, i32>, v: ValueId| -> i32 {
                match cdfg.value(v).kind {
                    ValueKind::Const(c) => c,
                    ValueKind::SymbolUse(s) => symbols.get(&s).copied().unwrap_or(0),
                    ValueKind::Def(_) => env[&v],
                }
            };
        let mut br_taken = false;
        // Symbol writes are latched at block exit: readers inside the block
        // that used `SymbolUse` see the entry value throughout.
        let mut pending_symbol_writes: Vec<(SymbolId, i32)> = Vec::new();

        for &oid in &bb.ops {
            let op = cdfg.op(oid);
            stats.dynamic_ops += 1;
            *stats.op_counts.entry(op.opcode).or_insert(0) += 1;
            if stats.dynamic_ops > max_ops {
                return Err(InterpError::StepLimit(max_ops));
            }
            let result: Option<i32> = match op.opcode {
                Opcode::Load => {
                    let addr = read(&env, &symbols, op.args[0]) as i64;
                    stats.mem_reads += 1;
                    let idx = usize::try_from(addr).ok().filter(|&i| i < mem.len());
                    match idx {
                        Some(i) => Some(mem[i]),
                        None => {
                            return Err(InterpError::OutOfBounds {
                                addr,
                                size: mem.len(),
                            })
                        }
                    }
                }
                Opcode::Store => {
                    let addr = read(&env, &symbols, op.args[0]) as i64;
                    let val = read(&env, &symbols, op.args[1]);
                    stats.mem_writes += 1;
                    let idx = usize::try_from(addr).ok().filter(|&i| i < mem.len());
                    match idx {
                        Some(i) => {
                            mem[i] = val;
                            None
                        }
                        None => {
                            return Err(InterpError::OutOfBounds {
                                addr,
                                size: mem.len(),
                            })
                        }
                    }
                }
                Opcode::Br => {
                    let c = read(&env, &symbols, op.args[0]);
                    stats.branches += 1;
                    br_taken = c != 0;
                    None
                }
                opcode => {
                    let args: Vec<i32> = op.args.iter().map(|&a| read(&env, &symbols, a)).collect();
                    Some(opcode.eval(&args))
                }
            };
            if let (Some(r), Some(v)) = (result, op.result) {
                env.insert(v, r);
                if let Some(s) = op.writes_symbol {
                    pending_symbol_writes.push((s, r));
                }
            }
        }
        for (s, v) in pending_symbol_writes {
            symbols.insert(s, v);
        }

        match bb.terminator.as_ref().expect("validated cdfg") {
            Terminator::Jump(b) => block = *b,
            Terminator::Branch {
                taken, fallthrough, ..
            } => {
                block = if br_taken { *taken } else { *fallthrough };
            }
            Terminator::Return => return Ok(stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdfgBuilder;

    /// Sum of squares of mem[0..n] written to mem[100].
    fn sum_squares(n: i32) -> Cdfg {
        let mut b = CdfgBuilder::new("ssq");
        let b0 = b.block("entry");
        let b1 = b.block("body");
        let b2 = b.block("exit");
        let i = b.symbol("i");
        let acc = b.symbol("acc");
        b.select(b0);
        b.mov_const_to_symbol(0, i);
        b.mov_const_to_symbol(0, acc);
        b.jump(b1);
        b.select(b1);
        let iv = b.use_symbol(i);
        let av = b.use_symbol(acc);
        let x = b.load_name(iv, "x");
        let sq = b.op(Opcode::Mul, &[x, x]);
        let a2 = b.op(Opcode::Add, &[av, sq]);
        b.write_symbol(a2, acc);
        let one = b.constant(1);
        let i2 = b.op(Opcode::Add, &[iv, one]);
        b.write_symbol(i2, i);
        let nv = b.constant(n);
        let c = b.op(Opcode::Lt, &[i2, nv]);
        b.branch(c, b1, b2);
        b.select(b2);
        let av = b.use_symbol(acc);
        let out = b.constant(100);
        b.store(out, av, "out");
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn sum_of_squares_matches_rust() {
        let cdfg = sum_squares(8);
        let mut mem = vec![0i32; 128];
        for i in 0..8 {
            mem[i] = i as i32 + 1;
        }
        let stats = run(&cdfg, &mut mem, 100_000).unwrap();
        let expect: i32 = (1..=8).map(|x| x * x).sum();
        assert_eq!(mem[100], expect);
        // Loop body ran 8 times.
        assert_eq!(stats.block_counts[&BlockId(1)], 8);
        assert_eq!(stats.mem_reads, 8);
        assert_eq!(stats.mem_writes, 1);
        assert_eq!(stats.branches, 8);
    }

    #[test]
    fn symbol_writes_latch_at_block_exit() {
        // body writes i but also reads i after the write op in program
        // order: the read must still see the entry value.
        let mut b = CdfgBuilder::new("latch");
        let b0 = b.block("b0");
        let b1 = b.block("b1");
        let s = b.symbol("s");
        b.select(b0);
        b.mov_const_to_symbol(5, s);
        b.jump(b1);
        b.select(b1);
        let sv = b.use_symbol(s);
        let one = b.constant(1);
        let plus = b.op(Opcode::Add, &[sv, one]);
        b.write_symbol(plus, s);
        // Read the symbol-use value again after the write: still 5.
        let copy = b.op(Opcode::Mov, &[sv]);
        let addr = b.constant(0);
        b.store(addr, copy, "out");
        b.ret();
        let cdfg = b.finish().unwrap();
        let mut mem = vec![0i32; 4];
        run(&cdfg, &mut mem, 1000).unwrap();
        assert_eq!(mem[0], 5);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut b = CdfgBuilder::new("oob");
        let _ = b.block("b0");
        let addr = b.constant(999);
        let v = b.load_name(addr, "x");
        let a0 = b.constant(0);
        b.store(a0, v, "x");
        b.ret();
        let cdfg = b.finish().unwrap();
        let mut mem = vec![0i32; 16];
        let err = run(&cdfg, &mut mem, 1000).unwrap_err();
        assert_eq!(
            err,
            InterpError::OutOfBounds {
                addr: 999,
                size: 16
            }
        );
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut b = CdfgBuilder::new("inf");
        let b0 = b.block("b0");
        let b1 = b.block("b1");
        b.select(b0);
        b.jump(b1);
        b.select(b1);
        let one = b.constant(1);
        let zero = b.constant(0);
        let t = b.op(Opcode::Mov, &[one]);
        let c = b.op(Opcode::Gt, &[t, zero]);
        b.branch(c, b1, b0);
        let cdfg = {
            // b0 must not be re-terminated; build fresh structure: jump
            // back creates the loop.
            b.finish().unwrap()
        };
        let mut mem = vec![0i32; 4];
        let err = run(&cdfg, &mut mem, 500).unwrap_err();
        assert_eq!(err, InterpError::StepLimit(500));
    }

    #[test]
    fn uninitialized_symbols_read_zero() {
        let mut b = CdfgBuilder::new("zero");
        let _ = b.block("b0");
        let s = b.symbol("never_set");
        let v = b.use_symbol(s);
        let copy = b.op(Opcode::Mov, &[v]);
        let addr = b.constant(1);
        b.store(addr, copy, "out");
        b.ret();
        let cdfg = b.finish().unwrap();
        let mut mem = vec![7i32; 4];
        run(&cdfg, &mut mem, 100).unwrap();
        assert_eq!(mem[1], 0);
    }
}
