//! Per-block scheduling analyses and CDFG traversal orders.
//!
//! Provides the ingredients of the paper's list scheduler — ASAP/ALAP
//! levels, **mobility**, fan-outs and memory-order edges — plus the two
//! CDFG traversal strategies compared in Section III-D.1: the basic flow's
//! *forward* traversal and the proposed *weighted* traversal ordered by
//! `Wbb = n(s) + Σ_{s} f_s`.

use crate::cdfg::{BlockId, Cdfg};
use crate::dfg::{Dfg, OpId};
use crate::value::ValueKind;
use std::collections::HashMap;

/// Dependency edges of one block: data edges plus memory-order edges.
///
/// Memory ordering (per alias class, in program order): a store depends on
/// every earlier load and store of its class; a load depends on the latest
/// earlier store of its class. Loads of the same class may reorder freely
/// between stores.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// Predecessors: `op` -> ops that must execute strictly before it.
    pub preds: HashMap<OpId, Vec<OpId>>,
    /// Successors: inverse of `preds`.
    pub succs: HashMap<OpId, Vec<OpId>>,
}

impl DepGraph {
    /// Builds the dependency graph of a block.
    pub fn build(dfg: &Dfg<'_>) -> DepGraph {
        let mut preds: HashMap<OpId, Vec<OpId>> = HashMap::new();
        let mut succs: HashMap<OpId, Vec<OpId>> = HashMap::new();
        for &id in dfg.op_ids() {
            preds.entry(id).or_default();
            succs.entry(id).or_default();
        }
        let add = |preds: &mut HashMap<OpId, Vec<OpId>>,
                   succs: &mut HashMap<OpId, Vec<OpId>>,
                   from: OpId,
                   to: OpId| {
            let p = preds.entry(to).or_default();
            if !p.contains(&from) {
                p.push(from);
            }
            let s = succs.entry(from).or_default();
            if !s.contains(&to) {
                s.push(to);
            }
        };

        // Data edges.
        for op in dfg.ops() {
            for p in dfg.data_preds(op.id) {
                add(&mut preds, &mut succs, p, op.id);
            }
        }
        // Memory-order edges.
        for (from, to) in order_edges(dfg) {
            add(&mut preds, &mut succs, from, to);
        }
        DepGraph { preds, succs }
    }

    /// Predecessors of `op` (empty slice when none).
    pub fn preds_of(&self, op: OpId) -> &[OpId] {
        self.preds.get(&op).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Successors of `op` (empty slice when none).
    pub fn succs_of(&self, op: OpId) -> &[OpId] {
        self.succs.get(&op).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Memory-order edges of a block (see [`DepGraph`] for the rule).
pub fn order_edges(dfg: &Dfg<'_>) -> Vec<(OpId, OpId)> {
    use crate::op::Opcode;
    let mut edges = Vec::new();
    let mut last_store: HashMap<u32, OpId> = HashMap::new();
    let mut loads_since_store: HashMap<u32, Vec<OpId>> = HashMap::new();
    for op in dfg.ops() {
        let Some(class) = op.alias else { continue };
        match op.opcode {
            Opcode::Load => {
                if let Some(&st) = last_store.get(&class.0) {
                    edges.push((st, op.id));
                }
                loads_since_store.entry(class.0).or_default().push(op.id);
            }
            Opcode::Store => {
                if let Some(&st) = last_store.get(&class.0) {
                    edges.push((st, op.id));
                }
                for &ld in loads_since_store
                    .get(&class.0)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                {
                    edges.push((ld, op.id));
                }
                loads_since_store.insert(class.0, Vec::new());
                last_store.insert(class.0, op.id);
            }
            _ => {}
        }
    }
    edges
}

/// ASAP levels (earliest cycle per op assuming unit latency and unlimited
/// resources). Level 0 = sources.
pub fn asap(dfg: &Dfg<'_>, deps: &DepGraph) -> HashMap<OpId, usize> {
    let mut level = HashMap::new();
    // Program order is topological (validated), so one pass suffices.
    for &id in dfg.op_ids() {
        let l = deps
            .preds_of(id)
            .iter()
            .map(|p| level[p] + 1)
            .max()
            .unwrap_or(0);
        level.insert(id, l);
    }
    level
}

/// ALAP levels for a schedule of `length` cycles (latest feasible cycle).
///
/// # Panics
///
/// Panics if `length` is smaller than the critical path requires.
pub fn alap(dfg: &Dfg<'_>, deps: &DepGraph, length: usize) -> HashMap<OpId, usize> {
    let mut level = HashMap::new();
    for &id in dfg.op_ids().iter().rev() {
        let l = deps
            .succs_of(id)
            .iter()
            .map(|s| {
                let sl: usize = level[s];
                assert!(sl > 0, "schedule length too small for critical path");
                sl - 1
            })
            .min()
            .unwrap_or(length.saturating_sub(1));
        level.insert(id, l);
    }
    level
}

/// Critical-path length of a block in cycles (the minimum schedule length
/// with unlimited resources).
pub fn critical_path(dfg: &Dfg<'_>, deps: &DepGraph) -> usize {
    let levels = asap(dfg, deps);
    levels.values().map(|&l| l + 1).max().unwrap_or(0)
}

/// Mobility per op: `alap - asap` for the critical-path-length schedule.
/// Critical ops have mobility 0.
pub fn mobility(dfg: &Dfg<'_>, deps: &DepGraph) -> HashMap<OpId, usize> {
    let len = critical_path(dfg, deps);
    let a = asap(dfg, deps);
    let l = alap(dfg, deps, len.max(1));
    a.iter().map(|(&op, &av)| (op, l[&op] - av)).collect()
}

/// The paper's block weight `Wbb = n(s) + Σ_{s ∈ b} f_s`, where `n(s)` is
/// the number of symbol variables present in the block and `f_s` the
/// fan-out of each: the number of operand slots reading the symbol within
/// the block, plus one if the block writes it.
pub fn block_weight(cdfg: &Cdfg, block: BlockId) -> usize {
    let dfg = cdfg.dfg(block);
    let mut symbols: Vec<u32> = Vec::new();
    let mut fanout_total = 0usize;

    // Reads.
    for op in dfg.ops() {
        for &a in &op.args {
            if let ValueKind::SymbolUse(s) = cdfg.value(a).kind {
                if !symbols.contains(&s.0) {
                    symbols.push(s.0);
                }
                fanout_total += 1;
            }
        }
    }
    // Writes.
    for op in dfg.ops() {
        if let Some(s) = op.writes_symbol {
            if !symbols.contains(&s.0) {
                symbols.push(s.0);
            }
            fanout_total += 1;
        }
    }
    symbols.len() + fanout_total
}

/// Forward CDFG traversal of the basic flow: reverse post-order from the
/// entry, so every block is visited before its (non-back-edge) successors.
pub fn forward_order(cdfg: &Cdfg) -> Vec<BlockId> {
    let n = cdfg.num_blocks();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit stack.
    let mut stack: Vec<(BlockId, usize)> = vec![(cdfg.entry(), 0)];
    visited[cdfg.entry().0 as usize] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = cdfg.successors(b);
        if *i < succs.len() {
            let nxt = succs[*i];
            *i += 1;
            if !visited[nxt.0 as usize] {
                visited[nxt.0 as usize] = true;
                stack.push((nxt, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// The proposed weighted traversal (Section III-D.1): blocks in descending
/// [`block_weight`]; ties broken by forward order so the result is
/// deterministic.
pub fn weighted_order(cdfg: &Cdfg) -> Vec<BlockId> {
    let fwd = forward_order(cdfg);
    let rank: HashMap<BlockId, usize> = fwd.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let mut order = fwd.clone();
    order.sort_by_key(|&b| (std::cmp::Reverse(block_weight(cdfg, b)), rank[&b]));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdfgBuilder;
    use crate::op::Opcode;

    /// entry -> body(loop) -> exit, body has symbols i, acc.
    fn looped() -> (Cdfg, BlockId, BlockId, BlockId) {
        let mut b = CdfgBuilder::new("t");
        let b0 = b.block("entry");
        let b1 = b.block("body");
        let b2 = b.block("exit");
        let i = b.symbol("i");
        let acc = b.symbol("acc");
        b.select(b0);
        b.mov_const_to_symbol(0, i);
        b.mov_const_to_symbol(0, acc);
        b.jump(b1);
        b.select(b1);
        let iv = b.use_symbol(i);
        let av = b.use_symbol(acc);
        let x = b.load_name(iv, "x");
        let t = b.op(Opcode::Mul, &[x, x]);
        let a2 = b.op(Opcode::Add, &[av, t]);
        b.write_symbol(a2, acc);
        let one = b.constant(1);
        let i2 = b.op(Opcode::Add, &[iv, one]);
        b.write_symbol(i2, i);
        let n = b.constant(8);
        let c = b.op(Opcode::Lt, &[i2, n]);
        b.branch(c, b1, b2);
        b.select(b2);
        let av = b.use_symbol(acc);
        let z = b.constant(100);
        b.store(z, av, "out");
        b.ret();
        (b.finish().unwrap(), b0, b1, b2)
    }

    #[test]
    fn asap_alap_mobility_basics() {
        let (cdfg, _, b1, _) = looped();
        let dfg = cdfg.dfg(b1);
        let deps = DepGraph::build(&dfg);
        let a = asap(&dfg, &deps);
        let cp = critical_path(&dfg, &deps);
        // load -> mul -> add(acc) is the critical chain: length >= 3.
        assert!(cp >= 3, "cp = {cp}");
        let m = mobility(&dfg, &deps);
        // Some op on the critical path has zero mobility.
        assert!(m.values().any(|&x| x == 0));
        // ASAP of the load (first op) is 0.
        let load = dfg.op_ids()[0];
        assert_eq!(a[&load], 0);
        // All mobilities are bounded by cp-1.
        assert!(m.values().all(|&x| x < cp));
    }

    #[test]
    fn order_edges_serialize_same_class_stores() {
        let mut b = CdfgBuilder::new("t");
        let bb = b.block("b");
        b.select(bb);
        let a0 = b.constant(0);
        let a1 = b.constant(1);
        let v = b.load_name(a0, "m");
        b.store(a1, v, "m");
        let w = b.load_name(a0, "m");
        b.store(a0, w, "m");
        b.ret();
        let cdfg = b.finish().unwrap();
        let dfg = cdfg.dfg(bb);
        let edges = order_edges(&dfg);
        let ids = dfg.op_ids();
        // load0 -> store1, store1 -> load2, load2 -> store3, store1 -> store3
        assert!(edges.contains(&(ids[0], ids[1])));
        assert!(edges.contains(&(ids[1], ids[2])));
        assert!(edges.contains(&(ids[2], ids[3])));
        assert!(edges.contains(&(ids[1], ids[3])));
    }

    #[test]
    fn different_alias_classes_do_not_serialize() {
        let mut b = CdfgBuilder::new("t");
        let bb = b.block("b");
        b.select(bb);
        let a0 = b.constant(0);
        let v = b.load_name(a0, "x");
        b.store(a0, v, "y");
        let w = b.load_name(a0, "x");
        b.store(a0, w, "z");
        b.ret();
        let cdfg = b.finish().unwrap();
        let edges = order_edges(&cdfg.dfg(bb));
        assert!(edges.is_empty());
    }

    #[test]
    fn block_weights_favor_symbol_heavy_blocks() {
        let (cdfg, b0, b1, b2) = looped();
        let w0 = block_weight(&cdfg, b0);
        let w1 = block_weight(&cdfg, b1);
        let w2 = block_weight(&cdfg, b2);
        // Body reads i, acc and writes both: heaviest.
        assert!(w1 > w0, "w1={w1} w0={w0}");
        assert!(w1 > w2, "w1={w1} w2={w2}");
        // entry: writes i and acc, no reads: n(s)=2 + fanouts 2 = 4.
        assert_eq!(w0, 4);
        // exit: reads acc once: n(s)=1 + 1 = 2.
        assert_eq!(w2, 2);
    }

    #[test]
    fn traversal_orders() {
        let (cdfg, b0, b1, b2) = looped();
        assert_eq!(forward_order(&cdfg), vec![b0, b1, b2]);
        let w = weighted_order(&cdfg);
        assert_eq!(w[0], b1, "heaviest block first");
        assert_eq!(w, vec![b1, b0, b2]);
    }

    #[test]
    fn forward_order_visits_all_blocks_once() {
        let (cdfg, ..) = looped();
        let f = forward_order(&cdfg);
        assert_eq!(f.len(), cdfg.num_blocks());
    }
}
