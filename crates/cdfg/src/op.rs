//! Operation opcodes and their static properties.

use std::fmt;

/// Opcode of an operation node.
///
/// All operations are single-cycle on the CGRA's multi-operation functional
/// units (the paper's IPA-style ALU). `Load`/`Store` additionally require a
/// tile with a load/store unit; at run time they may incur global stall
/// cycles on TCDM bank conflicts, but their *mapped* latency is one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Two's-complement multiplication (low 32 bits).
    Mul,
    /// Logical shift left (`a << (b & 31)`).
    Shl,
    /// Arithmetic shift right (`a >> (b & 31)`, sign-extending).
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Absolute value (one operand).
    Abs,
    /// Equality compare, produces 1 or 0.
    Eq,
    /// Inequality compare, produces 1 or 0.
    Ne,
    /// Signed less-than, produces 1 or 0.
    Lt,
    /// Signed less-or-equal, produces 1 or 0.
    Le,
    /// Signed greater-than, produces 1 or 0.
    Gt,
    /// Signed greater-or-equal, produces 1 or 0.
    Ge,
    /// `select(c, a, b) = if c != 0 { a } else { b }`.
    Select,
    /// Copy of the single operand. Emitted by the builder for symbol
    /// initialisation and by the mapper's re-routing transformation.
    Mov,
    /// Word load from data memory (operand: word address). LSU tiles only.
    Load,
    /// Word store to data memory (operands: word address, value).
    /// LSU tiles only. Produces no result.
    Store,
    /// Conditional-branch operation: consumes the block's branch condition
    /// and drives the CGRA controller's next-block selection ("control"
    /// instructions in the paper's instruction taxonomy). Produces no
    /// result.
    Br,
}

impl Opcode {
    /// All opcodes, for exhaustive tests and random program generation.
    pub const ALL: [Opcode; 22] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Min,
        Opcode::Max,
        Opcode::Abs,
        Opcode::Eq,
        Opcode::Ne,
        Opcode::Lt,
        Opcode::Le,
        Opcode::Gt,
        Opcode::Ge,
        Opcode::Select,
        Opcode::Mov,
        Opcode::Load,
        Opcode::Store,
        Opcode::Br,
    ];

    /// Number of value operands the opcode consumes.
    pub fn arity(self) -> usize {
        match self {
            Opcode::Abs | Opcode::Mov | Opcode::Load | Opcode::Br => 1,
            Opcode::Select => 3,
            Opcode::Store => 2,
            _ => 2,
        }
    }

    /// Whether the opcode produces a result value.
    pub fn has_result(self) -> bool {
        !matches!(self, Opcode::Store | Opcode::Br)
    }

    /// Whether the opcode touches data memory (must map to an LSU tile).
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Whether the opcode is the control operation closing a block.
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Br)
    }

    /// Evaluates the opcode on concrete operands (the interpreter's and the
    /// simulator's shared ALU semantics). `Load`, `Store` and `Br` are
    /// handled by their callers; for uniformity `Mov` returns its operand.
    ///
    /// # Panics
    ///
    /// Panics if called with the wrong operand count or on a memory/branch
    /// opcode.
    pub fn eval(self, args: &[i32]) -> i32 {
        assert_eq!(
            args.len(),
            self.arity(),
            "opcode {self} expects {} operands",
            self.arity()
        );
        let bool2i = |b: bool| if b { 1 } else { 0 };
        match self {
            Opcode::Add => args[0].wrapping_add(args[1]),
            Opcode::Sub => args[0].wrapping_sub(args[1]),
            Opcode::Mul => args[0].wrapping_mul(args[1]),
            Opcode::Shl => args[0].wrapping_shl(args[1] as u32 & 31),
            Opcode::Shr => args[0].wrapping_shr(args[1] as u32 & 31),
            Opcode::And => args[0] & args[1],
            Opcode::Or => args[0] | args[1],
            Opcode::Xor => args[0] ^ args[1],
            Opcode::Min => args[0].min(args[1]),
            Opcode::Max => args[0].max(args[1]),
            Opcode::Abs => args[0].wrapping_abs(),
            Opcode::Eq => bool2i(args[0] == args[1]),
            Opcode::Ne => bool2i(args[0] != args[1]),
            Opcode::Lt => bool2i(args[0] < args[1]),
            Opcode::Le => bool2i(args[0] <= args[1]),
            Opcode::Gt => bool2i(args[0] > args[1]),
            Opcode::Ge => bool2i(args[0] >= args[1]),
            Opcode::Select => {
                if args[0] != 0 {
                    args[1]
                } else {
                    args[2]
                }
            }
            Opcode::Mov => args[0],
            Opcode::Load | Opcode::Store | Opcode::Br => {
                panic!("{self} is not a pure ALU opcode")
            }
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Min => "min",
            Opcode::Max => "max",
            Opcode::Abs => "abs",
            Opcode::Eq => "eq",
            Opcode::Ne => "ne",
            Opcode::Lt => "lt",
            Opcode::Le => "le",
            Opcode::Gt => "gt",
            Opcode::Ge => "ge",
            Opcode::Select => "select",
            Opcode::Mov => "mov",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Br => "br",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_result() {
        assert_eq!(Opcode::Add.arity(), 2);
        assert_eq!(Opcode::Select.arity(), 3);
        assert_eq!(Opcode::Load.arity(), 1);
        assert_eq!(Opcode::Store.arity(), 2);
        assert!(!Opcode::Store.has_result());
        assert!(!Opcode::Br.has_result());
        assert!(Opcode::Load.has_result());
    }

    #[test]
    fn memory_classification() {
        assert!(Opcode::Load.is_memory());
        assert!(Opcode::Store.is_memory());
        assert!(!Opcode::Add.is_memory());
        assert!(!Opcode::Br.is_memory());
    }

    #[test]
    fn eval_arithmetic() {
        assert_eq!(Opcode::Add.eval(&[3, 4]), 7);
        assert_eq!(Opcode::Sub.eval(&[3, 4]), -1);
        assert_eq!(Opcode::Mul.eval(&[3, 4]), 12);
        assert_eq!(Opcode::Add.eval(&[i32::MAX, 1]), i32::MIN); // wrapping
        assert_eq!(Opcode::Min.eval(&[-2, 5]), -2);
        assert_eq!(Opcode::Max.eval(&[-2, 5]), 5);
        assert_eq!(Opcode::Abs.eval(&[-7]), 7);
    }

    #[test]
    fn eval_shifts_mask_count() {
        assert_eq!(Opcode::Shl.eval(&[1, 33]), 2); // 33 & 31 == 1
        assert_eq!(Opcode::Shr.eval(&[-8, 1]), -4); // arithmetic
    }

    #[test]
    fn eval_compares_produce_bool_ints() {
        assert_eq!(Opcode::Lt.eval(&[1, 2]), 1);
        assert_eq!(Opcode::Ge.eval(&[1, 2]), 0);
        assert_eq!(Opcode::Eq.eval(&[5, 5]), 1);
        assert_eq!(Opcode::Ne.eval(&[5, 5]), 0);
    }

    #[test]
    fn eval_select_and_mov() {
        assert_eq!(Opcode::Select.eval(&[1, 10, 20]), 10);
        assert_eq!(Opcode::Select.eval(&[0, 10, 20]), 20);
        assert_eq!(Opcode::Mov.eval(&[42]), 42);
    }

    #[test]
    #[should_panic(expected = "expects 2 operands")]
    fn eval_wrong_arity_panics() {
        Opcode::Add.eval(&[1]);
    }

    #[test]
    fn all_list_is_exhaustive_on_arity() {
        for op in Opcode::ALL {
            assert!(op.arity() >= 1 && op.arity() <= 3);
        }
    }
}
