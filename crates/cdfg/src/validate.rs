//! Structural validation of [`Cdfg`]s.
//!
//! Rules enforced:
//!
//! 1. at least one block; every block terminated;
//! 2. terminator targets exist; a `Branch` terminator names a `br` op of
//!    its own block, and every `br` op is named by its block's terminator;
//! 3. operand arity matches the opcode; all referenced values/ops/symbols/
//!    alias classes exist;
//! 4. SSA locality: an operation only consumes values created in its own
//!    block (cross-block communication goes through symbols);
//! 5. program order is topological: every data predecessor of an op
//!    appears earlier in its block's op list;
//! 6. memory ops carry an alias class, non-memory ops do not;
//! 7. a symbol is written at most once per block, by an op of that block;
//! 8. all blocks are reachable from the entry.

use crate::cdfg::{Cdfg, Terminator};
use crate::dfg::OpId;
use crate::value::ValueKind;
use crate::{BlockId, SymbolId};
use std::error::Error;
use std::fmt;

/// A structural problem found by [`Cdfg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The CDFG has no blocks.
    Empty,
    /// A block has no terminator.
    Unterminated(BlockId),
    /// A terminator names a block that does not exist.
    BadTarget(BlockId),
    /// A `Branch` terminator does not name a `br` op of its block, or a
    /// `br` op is not referenced by its block's terminator.
    BranchMismatch(BlockId),
    /// Wrong operand count for an opcode.
    Arity(OpId),
    /// An operation consumes a value created in a different block.
    CrossBlockUse(OpId),
    /// An operation appears before one of its data predecessors.
    OrderViolation(OpId),
    /// A memory op without alias class, or a non-memory op with one.
    AliasMismatch(OpId),
    /// A symbol is written more than once in one block.
    DoubleSymbolWrite(BlockId, SymbolId),
    /// A block is unreachable from the entry.
    Unreachable(BlockId),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => f.write_str("cdfg has no basic blocks"),
            ValidateError::Unterminated(b) => write!(f, "block {b} has no terminator"),
            ValidateError::BadTarget(b) => write!(f, "block {b} jumps to a nonexistent block"),
            ValidateError::BranchMismatch(b) => {
                write!(f, "block {b} branch terminator and br op disagree")
            }
            ValidateError::Arity(o) => write!(f, "operation {o} has wrong operand count"),
            ValidateError::CrossBlockUse(o) => {
                write!(f, "operation {o} uses a value from another block")
            }
            ValidateError::OrderViolation(o) => {
                write!(f, "operation {o} appears before its producer")
            }
            ValidateError::AliasMismatch(o) => {
                write!(f, "operation {o} has inconsistent alias-class annotation")
            }
            ValidateError::DoubleSymbolWrite(b, s) => {
                write!(f, "symbol {s} written twice in block {b}")
            }
            ValidateError::Unreachable(b) => write!(f, "block {b} is unreachable from entry"),
        }
    }
}

impl Error for ValidateError {}

pub(crate) fn validate(cdfg: &Cdfg) -> Result<(), ValidateError> {
    if cdfg.blocks.is_empty() {
        return Err(ValidateError::Empty);
    }
    let nblocks = cdfg.blocks.len() as u32;

    for bb in &cdfg.blocks {
        let term = bb
            .terminator
            .as_ref()
            .ok_or(ValidateError::Unterminated(bb.id))?;
        for t in term.successors() {
            if t.0 >= nblocks {
                return Err(ValidateError::BadTarget(bb.id));
            }
        }
        // Branch terminator <-> br op bijection.
        let br_ops: Vec<OpId> = bb
            .ops
            .iter()
            .copied()
            .filter(|&o| cdfg.op(o).opcode.is_branch())
            .collect();
        match term {
            Terminator::Branch { op, .. } => {
                if br_ops != vec![*op] {
                    return Err(ValidateError::BranchMismatch(bb.id));
                }
            }
            _ => {
                if !br_ops.is_empty() {
                    return Err(ValidateError::BranchMismatch(bb.id));
                }
            }
        }

        // Per-block op checks.
        let mut seen_writes: Vec<SymbolId> = Vec::new();
        for (pos, &oid) in bb.ops.iter().enumerate() {
            let op = cdfg.op(oid);
            if op.args.len() != op.opcode.arity() {
                return Err(ValidateError::Arity(oid));
            }
            if op.opcode.is_memory() != op.alias.is_some() {
                return Err(ValidateError::AliasMismatch(oid));
            }
            if let Some(a) = op.alias {
                if a.0 as usize >= cdfg.alias_names.len() {
                    return Err(ValidateError::AliasMismatch(oid));
                }
            }
            for &arg in &op.args {
                if cdfg.value_block(arg) != bb.id {
                    return Err(ValidateError::CrossBlockUse(oid));
                }
                if let ValueKind::Def(p) = cdfg.value(arg).kind {
                    let ppos = bb.ops.iter().position(|&x| x == p);
                    match ppos {
                        Some(pp) if pp < pos => {}
                        _ => return Err(ValidateError::OrderViolation(oid)),
                    }
                }
            }
            if let Some(s) = op.writes_symbol {
                if seen_writes.contains(&s) {
                    return Err(ValidateError::DoubleSymbolWrite(bb.id, s));
                }
                seen_writes.push(s);
            }
        }
    }

    // Reachability from entry.
    let mut seen = vec![false; cdfg.blocks.len()];
    let mut stack = vec![cdfg.entry];
    seen[cdfg.entry.0 as usize] = true;
    while let Some(b) = stack.pop() {
        for s in cdfg.successors(b) {
            if !seen[s.0 as usize] {
                seen[s.0 as usize] = true;
                stack.push(s);
            }
        }
    }
    if let Some(i) = seen.iter().position(|&r| !r) {
        return Err(ValidateError::Unreachable(BlockId(i as u32)));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdfgBuilder;
    use crate::op::Opcode;

    #[test]
    fn unterminated_block_rejected() {
        let mut b = CdfgBuilder::new("t");
        let _ = b.block("b0");
        assert!(matches!(
            b.finish(),
            Err(ValidateError::Unterminated(BlockId(0)))
        ));
    }

    #[test]
    fn unreachable_block_rejected() {
        let mut b = CdfgBuilder::new("t");
        let b0 = b.block("b0");
        let _orphan = b.block("orphan");
        b.select(b0);
        b.ret();
        // terminate orphan too so the failure is specifically reachability
        b.select(BlockId(1));
        b.ret();
        assert!(matches!(
            b.finish(),
            Err(ValidateError::Unreachable(BlockId(1)))
        ));
    }

    #[test]
    fn valid_loop_accepted() {
        let mut b = CdfgBuilder::new("t");
        let b0 = b.block("entry");
        let b1 = b.block("body");
        let b2 = b.block("exit");
        let i = b.symbol("i");
        b.select(b0);
        b.mov_const_to_symbol(0, i);
        b.jump(b1);
        b.select(b1);
        let iv = b.use_symbol(i);
        let one = b.constant(1);
        let inext = b.op(Opcode::Add, &[iv, one]);
        b.write_symbol(inext, i);
        let n = b.constant(10);
        let c = b.op(Opcode::Lt, &[inext, n]);
        b.branch(c, b1, b2);
        b.select(b2);
        b.ret();
        assert!(b.finish().is_ok());
    }
}
