//! Determinism guarantees of the workload generator: the same
//! `(GenParams, seed)` must yield a byte-identical kernel on every call,
//! from every thread, in any interleaving. A `HashMap`-iteration order or
//! ambient-state leak into generation would show up here (the
//! cross-*process* half of the guarantee lives in the bench crate's
//! `gen_suite --digest` test).

use cmam_cdfg::generate::{generate, GenParams, GeneratedKernel};
use std::thread;

fn all_profiles() -> Vec<GenParams> {
    GenParams::PROFILES
        .iter()
        .map(|n| GenParams::profile(n).expect("known profile"))
        .collect()
}

#[test]
fn repeated_generation_is_identical() {
    for p in all_profiles() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let a = generate(&p, seed);
            let b = generate(&p, seed);
            assert_eq!(a, b, "profile {} seed {seed:#x}", p.label);
        }
    }
}

#[test]
fn generation_is_identical_across_threads() {
    // Each of 4 threads generates the full profile × seed grid; every
    // thread must see the exact kernels the main thread sees.
    let expected: Vec<GeneratedKernel> = all_profiles()
        .iter()
        .flat_map(|p| (0..4u64).map(move |s| generate(p, s)))
        .collect();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            thread::spawn(|| -> Vec<GeneratedKernel> {
                all_profiles()
                    .iter()
                    .flat_map(|p| (0..4u64).map(move |s| generate(p, s)))
                    .collect()
            })
        })
        .collect();
    for w in workers {
        let got = w.join().expect("generator thread panicked");
        assert_eq!(got, expected);
    }
}

#[test]
fn distinct_seeds_and_profiles_give_distinct_kernels() {
    let p = GenParams::default();
    let mut seen: Vec<GeneratedKernel> = Vec::new();
    for seed in 0..32u64 {
        let g = generate(&p, seed);
        assert!(
            !seen.contains(&g),
            "seed {seed} duplicates an earlier kernel"
        );
        seen.push(g);
    }
}
