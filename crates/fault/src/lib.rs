//! Seeded, deterministic fault injection for the cmam stack.
//!
//! The engine and cache call into named *fault sites* (`cache.read`,
//! `job.panic`, ...) on their failure-prone paths. In production the
//! layer is off and every site check is a single relaxed atomic load —
//! the same zero-overhead discipline as `cmam_obs`. Under test, a
//! [`FaultPlan`] (a seed plus per-site probability rules) makes each
//! site fire deterministically: the decision for a given
//! `(seed, site, key)` triple is a pure splitmix64 function, so a chaos
//! run can be replayed bit-for-bit from its seed.
//!
//! Two rule flavours keep chaos suites convergent by construction:
//!
//! * **transient** (default): a cursed `(site, key)` fails the first
//!   one or two attempts and then *always* succeeds, so any caller with
//!   a retry budget of three or more recovers deterministically;
//! * **sticky** (`site=prob:sticky`): fires on every attempt — the
//!   permanent-failure flavour that exercises quarantine paths.
//!
//! Plans come from [`install`] (tests) or, on first use, from the
//! `CMAM_FAULT_PLAN` / `CMAM_FAULT_SEED` environment variables:
//!
//! ```text
//! CMAM_FAULT_SEED=7 CMAM_FAULT_PLAN='cache.read=0.25,job.panic=0.1:sticky' ...
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Fault state: 0 = uninitialised (consult the environment once),
/// 1 = off, 2 = a plan is installed.
static STATE: AtomicU8 = AtomicU8::new(0);

/// The installed plan, if any. Guarded by a poison-recovering lock so a
/// panicking test (panics are this crate's product) can never wedge it.
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);

/// Per-site fault counters: site name → leaked `fault.<site>` counter.
/// Leaked once per distinct site, not per event.
static SITE_COUNTERS: Mutex<Option<HashMap<String, &'static cmam_obs::metrics::Counter>>> =
    Mutex::new(None);

/// Seed used when `CMAM_FAULT_PLAN` is set without `CMAM_FAULT_SEED`.
pub const DEFAULT_SEED: u64 = 0xFA17_5EED;

/// Attempts transient faults are guaranteed to clear by: a cursed
/// transient `(site, key)` never fires at `attempt >= TRANSIENT_CLEARS_BY`.
pub const TRANSIENT_CLEARS_BY: u32 = 3;

/// Probability scale: rule thresholds live in `0..=2^53` and decisions
/// compare a 53-bit roll against them.
const THRESHOLD_ONE: u64 = 1 << 53;

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Is fault injection active? One relaxed atomic load when the answer
/// is a settled yes/no — the entire production-path cost of this crate.
#[inline]
pub fn active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        1 => false,
        _ => true,
    }
}

/// First-use path: read `CMAM_FAULT_PLAN` / `CMAM_FAULT_SEED` and
/// settle the state machine.
#[cold]
fn init_from_env() -> bool {
    let installed = match std::env::var("CMAM_FAULT_PLAN") {
        Ok(spec) if !spec.trim().is_empty() => {
            let seed = std::env::var("CMAM_FAULT_SEED")
                .ok()
                .and_then(|s| parse_seed(&s))
                .unwrap_or(DEFAULT_SEED);
            match FaultPlan::parse(&spec, seed) {
                Ok(plan) => {
                    *lock_recover(&PLAN) = Some(Arc::new(plan));
                    true
                }
                Err(err) => {
                    cmam_obs::warn!("ignoring CMAM_FAULT_PLAN: {err}");
                    false
                }
            }
        }
        _ => false,
    };
    STATE.store(if installed { 2 } else { 1 }, Ordering::Relaxed);
    installed
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Install a fault plan, replacing any previous one. Subsequent site
/// checks fire according to the plan until [`clear`] is called.
pub fn install(plan: FaultPlan) {
    *lock_recover(&PLAN) = Some(Arc::new(plan));
    STATE.store(2, Ordering::Relaxed);
}

/// Remove any installed plan and turn fault injection off (also
/// suppresses any future environment consultation — tests use this to
/// pin a known-clean state).
pub fn clear() {
    *lock_recover(&PLAN) = None;
    STATE.store(1, Ordering::Relaxed);
}

fn installed_plan() -> Option<Arc<FaultPlan>> {
    if !active() {
        return None;
    }
    lock_recover(&PLAN).clone()
}

/// One rule of a fault plan: a site pattern, a firing threshold and a
/// sticky/transient flavour.
#[derive(Debug, Clone)]
struct FaultRule {
    /// Exact site name, or a prefix ending in `*`.
    pattern: String,
    /// Firing threshold out of [`THRESHOLD_ONE`].
    threshold: u64,
    /// Sticky rules fire on every attempt; transient ones clear.
    sticky: bool,
}

impl FaultRule {
    fn matches(&self, site: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.pattern == site,
        }
    }
}

/// A seeded fault schedule: every decision it makes is a pure function
/// of `(seed, site, key, attempt)`, so runs replay exactly.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parse a plan from a comma-separated spec of
    /// `site=probability[:sticky]` rules. Site patterns may end in `*`
    /// to prefix-match (`cache.*`). The first matching rule wins.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (site, rest) = part
                .split_once('=')
                .ok_or_else(|| format!("fault rule `{part}`: expected site=probability"))?;
            let (prob_str, sticky) = match rest.split_once(':') {
                Some((p, "sticky")) => (p, true),
                Some((_, other)) => {
                    return Err(format!("fault rule `{part}`: unknown modifier `{other}`"))
                }
                None => (rest, false),
            };
            let prob: f64 = prob_str
                .trim()
                .parse()
                .map_err(|_| format!("fault rule `{part}`: bad probability `{prob_str}`"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!(
                    "fault rule `{part}`: probability {prob} outside [0, 1]"
                ));
            }
            rules.push(FaultRule {
                pattern: site.trim().to_string(),
                threshold: (prob * THRESHOLD_ONE as f64) as u64,
                sticky,
            });
        }
        if rules.is_empty() {
            return Err("fault plan is empty".to_string());
        }
        Ok(FaultPlan { seed, rules })
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Core decision: does `site` fire for `key` at `attempt`
    /// (1-based)? Deterministic in the plan alone — chaos tests scan
    /// seeds with this before installing a plan globally.
    pub fn decides(&self, site: &str, key: u64, attempt: u32) -> bool {
        match self.curse(site, key) {
            None => false,
            Some((_, true)) => true,
            // Transient: a cursed key fails its first 1–2 attempts and
            // then always succeeds, so bounded retry recovers it.
            Some((value, false)) => u64::from(attempt) <= 1 + (value & 1),
        }
    }

    /// If `site` is cursed for `key`, the deterministic roll value used
    /// to pick fault details (truncation point, flip bit, delay).
    pub fn roll(&self, site: &str, key: u64) -> Option<u64> {
        self.curse(site, key).map(|(value, _)| value)
    }

    /// Whether `(site, key)` is cursed at all, plus the roll value and
    /// stickiness. `None` when no rule matches or the roll clears it.
    fn curse(&self, site: &str, key: u64) -> Option<(u64, bool)> {
        let rule = self.rules.iter().find(|r| r.matches(site))?;
        if rule.threshold == 0 {
            return None;
        }
        let mut state = self
            .seed
            .wrapping_add(fnv64(site.as_bytes()))
            .wrapping_add(key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let roll = splitmix64(&mut state);
        if (roll >> 11) >= rule.threshold {
            return None;
        }
        Some((splitmix64(&mut state), rule.sticky))
    }
}

/// Does `site` fire for `key` right now? Attempt-free sites (cache IO,
/// corruption) are treated as attempt 1, so a cursed key fires on every
/// occasion — permanent until the plan changes.
#[inline]
pub fn fires(site: &str, key: u64) -> bool {
    if !active() {
        return false;
    }
    fires_slow(site, key, 1)
}

/// Does `site` fire for `key` at `attempt` (1-based)? Transient rules
/// clear by attempt [`TRANSIENT_CLEARS_BY`]; sticky rules never do.
#[inline]
pub fn fires_attempt(site: &str, key: u64, attempt: u32) -> bool {
    if !active() {
        return false;
    }
    fires_slow(site, key, attempt)
}

#[cold]
fn fires_slow(site: &str, key: u64, attempt: u32) -> bool {
    let Some(plan) = installed_plan() else {
        return false;
    };
    let fired = plan.decides(site, key, attempt);
    if fired {
        record(site);
    }
    fired
}

/// If `site` fires for `key` (attempt 1), the deterministic roll value
/// for picking fault details; `None` otherwise.
#[inline]
pub fn roll(site: &str, key: u64) -> Option<u64> {
    if !active() {
        return None;
    }
    roll_slow(site, key)
}

#[cold]
fn roll_slow(site: &str, key: u64) -> Option<u64> {
    let plan = installed_plan()?;
    if !plan.decides(site, key, 1) {
        return None;
    }
    record(site);
    plan.roll(site, key)
}

/// Panic with an `injected fault` message if `site` fires for `key` at
/// `attempt`. The deliberate chaos for per-job panic isolation tests.
#[inline]
pub fn panic_if(site: &str, key: u64, attempt: u32) {
    if fires_attempt(site, key, attempt) {
        panic!("injected fault: {site} (key {key:#018x}, attempt {attempt})");
    }
}

/// Sleep 1–2 ms (deterministically chosen) if `site` fires for `key`:
/// a worker-delay fault that perturbs scheduling without changing
/// results.
#[inline]
pub fn delay(site: &str, key: u64) {
    if let Some(value) = roll(site, key) {
        std::thread::sleep(std::time::Duration::from_millis(1 + (value % 2)));
    }
}

/// Corrupt an in-memory artifact according to the
/// `cache.corrupt.truncate` / `cache.corrupt.bitflip` sites: truncation
/// point and flipped bit are deterministic in `(plan, key)`. Returns
/// whether anything was mutated.
pub fn corrupt_artifact(key: u64, bytes: &mut Vec<u8>) -> bool {
    if !active() || bytes.is_empty() {
        return false;
    }
    let mut hit = false;
    if let Some(value) = roll("cache.corrupt.truncate", key) {
        bytes.truncate((value % bytes.len() as u64) as usize);
        hit = true;
    }
    if !bytes.is_empty() {
        if let Some(value) = roll("cache.corrupt.bitflip", key) {
            let bit = (value % (bytes.len() as u64 * 8)) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
            hit = true;
        }
    }
    hit
}

/// Count a fired fault: the `fault.fired` total plus a per-site
/// `fault.<site>` counter (name leaked once per distinct site).
fn record(site: &str) {
    cmam_obs::counter!("fault.fired").add(1);
    let mut guard = lock_recover(&SITE_COUNTERS);
    let map = guard.get_or_insert_with(HashMap::new);
    let counter = map.entry(site.to_string()).or_insert_with(|| {
        let name: &'static str = Box::leak(format!("fault.{site}").into_boxed_str());
        cmam_obs::metrics::registry().counter(name)
    });
    counter.add(1);
}

/// FNV-1a over `bytes` — mixes site names into the decision state.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// splitmix64: the same generator the DSE sampler uses, so fault plans
/// inherit its statistical quality without any new dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(spec: &str, seed: u64) -> FaultPlan {
        FaultPlan::parse(spec, seed).expect("valid plan")
    }

    /// Tests that install/clear the global plan must not interleave.
    static GLOBAL_PLAN: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "cache.read",
            "cache.read=maybe",
            "cache.read=1.5",
            "cache.read=-0.1",
            "cache.read=0.5:often",
            "",
            " , ,",
        ] {
            assert!(
                FaultPlan::parse(bad, 1).is_err(),
                "spec `{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn parse_accepts_probabilities_stickiness_and_wildcards() {
        let p = plan("cache.*=1.0, job.panic=0.5:sticky", 9);
        assert!(p.decides("cache.read", 42, 1), "wildcard matches");
        assert!(p.decides("cache.corrupt.bitflip", 42, 1));
        assert!(!p.decides("job.delay", 42, 1), "unmatched site never fires");
    }

    #[test]
    fn decisions_are_deterministic_and_key_sensitive() {
        let a = plan("job.panic=0.5", 1234);
        let b = plan("job.panic=0.5", 1234);
        let mut differs = false;
        for key in 0..256u64 {
            assert_eq!(
                a.decides("job.panic", key, 1),
                b.decides("job.panic", key, 1)
            );
            if a.decides("job.panic", key, 1) != a.decides("job.panic", key + 1, 1) {
                differs = true;
            }
        }
        assert!(differs, "decisions must vary with the key");
        let c = plan("job.panic=0.5", 1235);
        let mut seed_differs = false;
        for key in 0..256u64 {
            if a.decides("job.panic", key, 1) != c.decides("job.panic", key, 1) {
                seed_differs = true;
            }
        }
        assert!(seed_differs, "decisions must vary with the seed");
    }

    #[test]
    fn firing_rate_tracks_the_probability() {
        let p = plan("job.panic=0.25", 77);
        let fired = (0..10_000u64)
            .filter(|&k| p.decides("job.panic", k, 1))
            .count();
        assert!(
            (2_000..3_000).contains(&fired),
            "25% rule fired {fired}/10000 times"
        );
    }

    #[test]
    fn transient_faults_clear_by_the_retry_bound() {
        let p = plan("job.panic=0.9", 5);
        let mut cursed = 0;
        for key in 0..512u64 {
            if !p.decides("job.panic", key, 1) {
                continue;
            }
            cursed += 1;
            for attempt in TRANSIENT_CLEARS_BY..TRANSIENT_CLEARS_BY + 8 {
                assert!(
                    !p.decides("job.panic", key, attempt),
                    "transient fault still firing at attempt {attempt}"
                );
            }
        }
        assert!(cursed > 400, "0.9 rule should curse most keys");
    }

    #[test]
    fn sticky_faults_never_clear() {
        let p = plan("job.panic=0.9:sticky", 5);
        let key = (0..512u64)
            .find(|&k| p.decides("job.panic", k, 1))
            .expect("some cursed key");
        for attempt in 1..64 {
            assert!(p.decides("job.panic", key, attempt));
        }
    }

    #[test]
    fn corruption_is_deterministic_and_in_bounds() {
        let _serial = lock_recover(&GLOBAL_PLAN);
        install(plan("cache.corrupt.bitflip=1.0", 11));
        let original: Vec<u8> = (0..200u8).collect();
        let mut first = original.clone();
        let mut second = original.clone();
        assert!(corrupt_artifact(99, &mut first));
        assert!(corrupt_artifact(99, &mut second));
        clear();
        assert_eq!(first, second, "same plan+key corrupts identically");
        assert_eq!(first.len(), original.len());
        let flipped: u32 = first
            .iter()
            .zip(&original)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "bitflip site flips exactly one bit");
    }

    #[test]
    fn cleared_layer_never_fires() {
        let _serial = lock_recover(&GLOBAL_PLAN);
        install(plan("job.panic=1.0:sticky", 3));
        assert!(fires("job.panic", 1));
        clear();
        assert!(!fires("job.panic", 1));
        assert!(roll("job.panic", 1).is_none());
        let mut bytes = vec![1, 2, 3];
        assert!(!corrupt_artifact(1, &mut bytes));
        assert_eq!(bytes, vec![1, 2, 3]);
    }
}
