//! Property tests: the torus geometry is a metric space and paths are
//! consistent with distances.

use cmam_arch::{Direction, Geometry, TileId};
use proptest::prelude::*;

fn geometry() -> impl Strategy<Value = Geometry> {
    (1usize..=6, 1usize..=6).prop_map(|(r, c)| Geometry::new(r, c))
}

proptest! {
    #[test]
    fn distance_is_a_metric((g, a, b, c) in geometry().prop_flat_map(|g| {
        let n = g.num_tiles();
        (Just(g), 0..n, 0..n, 0..n)
    })) {
        let (a, b, c) = (TileId(a), TileId(b), TileId(c));
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(g.distance(a, a), 0);
        prop_assert_eq!(g.distance(a, b), g.distance(b, a));
        prop_assert!(g.distance(a, c) <= g.distance(a, b) + g.distance(b, c));
        // Bounded by the torus diameter.
        prop_assert!(g.distance(a, b) <= g.rows() / 2 + g.cols() / 2);
    }

    #[test]
    fn shortest_paths_realize_distances((g, a, b) in geometry().prop_flat_map(|g| {
        let n = g.num_tiles();
        (Just(g), 0..n, 0..n)
    })) {
        let (a, b) = (TileId(a), TileId(b));
        let path = g.shortest_path(a, b);
        prop_assert_eq!(path.len(), g.distance(a, b));
        let mut cur = a;
        for d in path {
            cur = g.neighbor(cur, d);
        }
        prop_assert_eq!(cur, b);
    }

    #[test]
    fn neighbors_are_mutual((g, t) in geometry().prop_flat_map(|g| {
        let n = g.num_tiles();
        (Just(g), 0..n)
    })) {
        let t = TileId(t);
        for (_, n) in g.neighbors(t) {
            prop_assert!(g.neighbors(n).iter().any(|&(_, m)| m == t));
            prop_assert_eq!(g.distance(t, n), 1);
        }
        for d in Direction::ALL {
            prop_assert_eq!(g.neighbor(g.neighbor(t, d), d.opposite()), t);
        }
    }
}
