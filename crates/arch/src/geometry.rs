//! Torus grid geometry: positions, neighbourhoods, hop distances.
//!
//! The CGRA interconnect is a 2D mesh with wrap-around links (a torus), as
//! in the paper's target architecture. Every tile has exactly four
//! point-to-point neighbours (north, east, south, west); a tile can read
//! operands directly from the register files of its neighbours, so a hop
//! distance of 1 is "free" for the mapper while longer distances require
//! explicit `move` instructions.

use crate::tile::TileId;
use std::fmt;

/// Cardinal direction towards a torus neighbour.
///
/// ```
/// use cmam_arch::Direction;
/// assert_eq!(Direction::North.opposite(), Direction::South);
/// assert_eq!(Direction::ALL.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Towards row - 1 (wrapping).
    North,
    /// Towards col + 1 (wrapping).
    East,
    /// Towards row + 1 (wrapping).
    South,
    /// Towards col - 1 (wrapping).
    West,
}

impl Direction {
    /// All four directions, in a fixed deterministic order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The direction pointing back where this one came from.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

/// A tile position on the grid: `row` in `0..rows`, `col` in `0..cols`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pos {
    /// Row index, 0 at the top.
    pub row: usize,
    /// Column index, 0 at the left.
    pub col: usize,
}

impl Pos {
    /// Creates a position. No bounds are enforced here; bounds belong to a
    /// [`Geometry`].
    pub fn new(row: usize, col: usize) -> Self {
        Pos { row, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// Rectangular torus geometry of the CGRA.
///
/// Tile ids are assigned row-major: tile 0 is `(0,0)`, tile 1 is `(0,1)`,
/// etc. The paper's 4x4 array numbers tiles 1..=16; this crate uses 0-based
/// [`TileId`]s internally and formats them 1-based in reports to match the
/// paper's tables.
///
/// ```
/// use cmam_arch::{Geometry, TileId};
/// let g = Geometry::new(4, 4);
/// // Torus wrap: tile (0,0) and tile (3,0) are direct neighbours.
/// assert_eq!(g.distance(TileId(0), TileId(12)), 1);
/// // Farthest pair on a 4x4 torus is 2+2 hops away.
/// assert_eq!(g.distance(TileId(0), TileId(10)), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    rows: usize,
    cols: usize,
}

impl Geometry {
    /// Creates a `rows x cols` torus.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "geometry must be non-empty");
        Geometry { rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// Converts a tile id into its grid position.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn pos(&self, id: TileId) -> Pos {
        assert!(id.0 < self.num_tiles(), "tile id {id} out of range");
        Pos::new(id.0 / self.cols, id.0 % self.cols)
    }

    /// Converts a grid position into a tile id (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the position is out of range.
    pub fn id(&self, pos: Pos) -> TileId {
        assert!(
            pos.row < self.rows && pos.col < self.cols,
            "position {pos} out of range"
        );
        TileId(pos.row * self.cols + pos.col)
    }

    /// The neighbour of `id` in direction `dir`, with torus wrap-around.
    pub fn neighbor(&self, id: TileId, dir: Direction) -> TileId {
        let p = self.pos(id);
        let q = match dir {
            Direction::North => Pos::new((p.row + self.rows - 1) % self.rows, p.col),
            Direction::South => Pos::new((p.row + 1) % self.rows, p.col),
            Direction::East => Pos::new(p.row, (p.col + 1) % self.cols),
            Direction::West => Pos::new(p.row, (p.col + self.cols - 1) % self.cols),
        };
        self.id(q)
    }

    /// All torus neighbours of `id` (deduplicated on degenerate 1xN / Nx1
    /// geometries), paired with the direction leading to them.
    pub fn neighbors(&self, id: TileId) -> Vec<(Direction, TileId)> {
        let mut out = Vec::with_capacity(4);
        for dir in Direction::ALL {
            let n = self.neighbor(id, dir);
            if n != id && !out.iter().any(|&(_, t)| t == n) {
                out.push((dir, n));
            }
        }
        out
    }

    /// Returns `true` when `a` and `b` are the same tile or direct torus
    /// neighbours (operand readable without a `move`).
    pub fn adjacent_or_same(&self, a: TileId, b: TileId) -> bool {
        self.distance(a, b) <= 1
    }

    /// Minimal hop distance between two tiles on the torus.
    pub fn distance(&self, a: TileId, b: TileId) -> usize {
        let pa = self.pos(a);
        let pb = self.pos(b);
        let dr = pa.row.abs_diff(pb.row);
        let dc = pa.col.abs_diff(pb.col);
        dr.min(self.rows - dr) + dc.min(self.cols - dc)
    }

    /// Iterator over all tile ids in row-major order.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> + '_ {
        (0..self.num_tiles()).map(TileId)
    }

    /// One shortest path from `a` to `b` as a list of directions
    /// (deterministic: row movement first, then column movement).
    pub fn shortest_path(&self, a: TileId, b: TileId) -> Vec<Direction> {
        let pa = self.pos(a);
        let pb = self.pos(b);
        let mut dirs = Vec::new();

        let down = (pb.row + self.rows - pa.row) % self.rows;
        let up = (pa.row + self.rows - pb.row) % self.rows;
        if down <= up {
            dirs.extend(std::iter::repeat_n(Direction::South, down));
        } else {
            dirs.extend(std::iter::repeat_n(Direction::North, up));
        }

        let right = (pb.col + self.cols - pa.col) % self.cols;
        let left = (pa.col + self.cols - pb.col) % self.cols;
        if right <= left {
            dirs.extend(std::iter::repeat_n(Direction::East, right));
        } else {
            dirs.extend(std::iter::repeat_n(Direction::West, left));
        }
        dirs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_by_four_basics() {
        let g = Geometry::new(4, 4);
        assert_eq!(g.num_tiles(), 16);
        assert_eq!(g.pos(TileId(5)), Pos::new(1, 1));
        assert_eq!(g.id(Pos::new(3, 3)), TileId(15));
    }

    #[test]
    fn torus_wraparound_neighbors() {
        let g = Geometry::new(4, 4);
        assert_eq!(g.neighbor(TileId(0), Direction::North), TileId(12));
        assert_eq!(g.neighbor(TileId(0), Direction::West), TileId(3));
        assert_eq!(g.neighbor(TileId(15), Direction::South), TileId(3));
        assert_eq!(g.neighbor(TileId(15), Direction::East), TileId(12));
    }

    #[test]
    fn neighbors_are_four_on_4x4() {
        let g = Geometry::new(4, 4);
        for t in g.tiles() {
            assert_eq!(g.neighbors(t).len(), 4, "tile {t}");
        }
    }

    #[test]
    fn neighbors_deduplicate_on_degenerate_grid() {
        let g = Geometry::new(1, 2);
        // On a 1x2 torus, east and west lead to the same tile and
        // north/south lead back to self.
        let n = g.neighbors(TileId(0));
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].1, TileId(1));
    }

    #[test]
    fn distance_is_torus_metric() {
        let g = Geometry::new(4, 4);
        assert_eq!(g.distance(TileId(0), TileId(0)), 0);
        // Wrap in cols, then the 4x4 maximum.
        assert_eq!(g.distance(TileId(0), TileId(3)), 1);
        assert_eq!(g.distance(TileId(0), TileId(10)), 4);
        // Symmetry.
        for a in g.tiles() {
            for b in g.tiles() {
                assert_eq!(g.distance(a, b), g.distance(b, a));
            }
        }
    }

    #[test]
    fn shortest_path_has_distance_length_and_arrives() {
        let g = Geometry::new(4, 4);
        for a in g.tiles() {
            for b in g.tiles() {
                let path = g.shortest_path(a, b);
                assert_eq!(path.len(), g.distance(a, b), "{a}->{b}");
                let mut cur = a;
                for d in path {
                    cur = g.neighbor(cur, d);
                }
                assert_eq!(cur, b);
            }
        }
    }

    #[test]
    fn opposite_directions_roundtrip() {
        let g = Geometry::new(3, 5);
        for t in g.tiles() {
            for d in Direction::ALL {
                assert_eq!(g.neighbor(g.neighbor(t, d), d.opposite()), t);
            }
        }
    }
}
