//! Whole-array configurations, including the four of Table I.
//!
//! | Config | LSU tiles | CM 64 | CM 32 | CM 16 | Total words |
//! |--------|-----------|-------|-------|-------|-------------|
//! | HOM64  | 1-8       | 1-16  |       |       | 1024        |
//! | HOM32  | 1-8       |       | 1-16  |       | 512         |
//! | HET1   | 1-8       | 1-4   | 5-8, 13-16 | 9-12 | 576    |
//! | HET2   | 1-8       | 1-4   | 5-8   | 9-16  | 512         |

use crate::geometry::Geometry;
use crate::tile::{TileConfig, TileId};
use std::error::Error;
use std::fmt;

/// Error building or validating a [`CgraConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The per-tile configuration list does not match the geometry.
    TileCountMismatch {
        /// Tiles implied by the geometry.
        expected: usize,
        /// Tiles supplied.
        actual: usize,
    },
    /// No tile has a load/store unit, so no kernel touching memory can map.
    NoLoadStoreTile,
    /// A tile has a zero-sized context memory.
    EmptyContextMemory(TileId),
    /// A tile has a zero-sized register file (no operand can ever be
    /// produced or routed through it).
    EmptyRegisterFile(TileId),
    /// A tile has a zero-sized constant register file (no immediate can
    /// be materialised on it).
    EmptyConstantRegisterFile(TileId),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TileCountMismatch { expected, actual } => write!(
                f,
                "tile config count {actual} does not match geometry ({expected} tiles)"
            ),
            ConfigError::NoLoadStoreTile => f.write_str("configuration has no load/store tile"),
            ConfigError::EmptyContextMemory(t) => {
                write!(f, "tile {t} has an empty context memory")
            }
            ConfigError::EmptyRegisterFile(t) => {
                write!(f, "tile {t} has an empty register file")
            }
            ConfigError::EmptyConstantRegisterFile(t) => {
                write!(f, "tile {t} has an empty constant register file")
            }
        }
    }
}

impl Error for ConfigError {}

/// A complete CGRA instance: geometry plus per-tile resources.
///
/// ```
/// use cmam_arch::CgraConfig;
/// // Table I totals.
/// assert_eq!(CgraConfig::hom64().total_cm_words(), 1024);
/// assert_eq!(CgraConfig::hom32().total_cm_words(), 512);
/// assert_eq!(CgraConfig::het1().total_cm_words(), 576);
/// assert_eq!(CgraConfig::het2().total_cm_words(), 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgraConfig {
    name: String,
    geometry: Geometry,
    tiles: Vec<TileConfig>,
}

impl CgraConfig {
    /// Builds a configuration after validating it.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the tile list length does not match the
    /// geometry, if no tile has an LSU, or if any context memory is empty.
    pub fn new(
        name: impl Into<String>,
        geometry: Geometry,
        tiles: Vec<TileConfig>,
    ) -> Result<Self, ConfigError> {
        if tiles.len() != geometry.num_tiles() {
            return Err(ConfigError::TileCountMismatch {
                expected: geometry.num_tiles(),
                actual: tiles.len(),
            });
        }
        if !tiles.iter().any(|t| t.has_lsu) {
            return Err(ConfigError::NoLoadStoreTile);
        }
        if let Some(i) = tiles.iter().position(|t| t.cm_words == 0) {
            return Err(ConfigError::EmptyContextMemory(TileId(i)));
        }
        if let Some(i) = tiles.iter().position(|t| t.rf_words == 0) {
            return Err(ConfigError::EmptyRegisterFile(TileId(i)));
        }
        if let Some(i) = tiles.iter().position(|t| t.crf_words == 0) {
            return Err(ConfigError::EmptyConstantRegisterFile(TileId(i)));
        }
        Ok(CgraConfig {
            name: name.into(),
            geometry,
            tiles,
        })
    }

    /// Starts a [`CgraConfigBuilder`] for custom configurations.
    pub fn builder(rows: usize, cols: usize) -> CgraConfigBuilder {
        CgraConfigBuilder::new(rows, cols)
    }

    fn paper_4x4(name: &str, cm_for_tile: impl Fn(usize) -> usize) -> CgraConfig {
        let geometry = Geometry::new(4, 4);
        let tiles = (0..16)
            .map(|i| {
                // Paper numbering is 1-based; tiles 1-8 (rows 0 and 1) carry
                // the load/store units in all Table I configurations.
                let display = i + 1;
                let cm = cm_for_tile(display);
                if display <= 8 {
                    TileConfig::load_store(cm)
                } else {
                    TileConfig::compute(cm)
                }
            })
            .collect();
        CgraConfig::new(name, geometry, tiles).expect("paper configuration is valid")
    }

    /// Table I `HOM64`: all 16 tiles with a 64-word CM (1024 words total).
    pub fn hom64() -> CgraConfig {
        CgraConfig::paper_4x4("HOM64", |_| 64)
    }

    /// Table I `HOM32`: all 16 tiles with a 32-word CM (512 words total).
    pub fn hom32() -> CgraConfig {
        CgraConfig::paper_4x4("HOM32", |_| 32)
    }

    /// Table I `HET1`: tiles 1-4 CM-64, tiles 5-8 and 13-16 CM-32,
    /// tiles 9-12 CM-16 (576 words total).
    pub fn het1() -> CgraConfig {
        CgraConfig::paper_4x4("HET1", |t| match t {
            1..=4 => 64,
            5..=8 | 13..=16 => 32,
            _ => 16,
        })
    }

    /// Table I `HET2`: tiles 1-4 CM-64, tiles 5-8 CM-32, tiles 9-16 CM-16
    /// (512 words total).
    pub fn het2() -> CgraConfig {
        CgraConfig::paper_4x4("HET2", |t| match t {
            1..=4 => 64,
            5..=8 => 32,
            _ => 16,
        })
    }

    /// The four configurations evaluated in the paper, in Table I order.
    pub fn table_one() -> Vec<CgraConfig> {
        vec![
            CgraConfig::hom64(),
            CgraConfig::hom32(),
            CgraConfig::het1(),
            CgraConfig::het2(),
        ]
    }

    /// A 4x4 array with effectively unbounded context memories; used to
    /// study traversal strategies (Fig 5) independent of memory limits.
    pub fn unconstrained_4x4() -> CgraConfig {
        CgraConfig::paper_4x4("UNCONSTRAINED", |_| usize::MAX / 2)
    }

    /// Configuration name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The torus geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Per-tile configuration.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the geometry.
    pub fn tile(&self, id: TileId) -> &TileConfig {
        &self.tiles[id.0]
    }

    /// All tiles with their ids, row-major.
    pub fn tiles(&self) -> impl Iterator<Item = (TileId, &TileConfig)> + '_ {
        self.tiles.iter().enumerate().map(|(i, t)| (TileId(i), t))
    }

    /// Ids of tiles with a load/store unit.
    pub fn lsu_tiles(&self) -> Vec<TileId> {
        self.tiles()
            .filter(|(_, t)| t.has_lsu)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total context-memory capacity across all tiles (the "Total" column
    /// of Table I).
    pub fn total_cm_words(&self) -> usize {
        self.tiles.iter().map(|t| t.cm_words).sum()
    }

    /// The largest context memory of any tile.
    pub fn max_cm_words(&self) -> usize {
        self.tiles.iter().map(|t| t.cm_words).max().unwrap_or(0)
    }
}

impl fmt::Display for CgraConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{}, {} CM words)",
            self.name,
            self.geometry.rows(),
            self.geometry.cols(),
            self.total_cm_words()
        )
    }
}

/// Builder for custom CGRA configurations (grid size, LSU placement, CM
/// sizes). Used by the design-space exploration example and tests.
///
/// ```
/// use cmam_arch::CgraConfig;
/// let cfg = CgraConfig::builder(2, 2)
///     .name("TINY")
///     .lsu_rows(1)
///     .uniform_cm(32)
///     .build()?;
/// assert_eq!(cfg.total_cm_words(), 128);
/// assert_eq!(cfg.lsu_tiles().len(), 2);
/// # Ok::<(), cmam_arch::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CgraConfigBuilder {
    name: String,
    geometry: Geometry,
    lsu_rows: usize,
    cm_words: Vec<usize>,
    rf_words: usize,
    crf_words: usize,
}

impl CgraConfigBuilder {
    /// Starts a builder for a `rows x cols` torus; by default the first two
    /// rows carry LSUs (as in the paper) and every CM has 64 words.
    pub fn new(rows: usize, cols: usize) -> Self {
        let geometry = Geometry::new(rows, cols);
        CgraConfigBuilder {
            name: "CUSTOM".to_owned(),
            geometry,
            lsu_rows: 2.min(rows),
            cm_words: vec![64; geometry.num_tiles()],
            rf_words: 8,
            crf_words: 16,
        }
    }

    /// Sets the configuration name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of leading rows whose tiles carry a load/store unit.
    pub fn lsu_rows(mut self, rows: usize) -> Self {
        self.lsu_rows = rows;
        self
    }

    /// Gives every tile the same context-memory size.
    pub fn uniform_cm(mut self, words: usize) -> Self {
        self.cm_words = vec![words; self.geometry.num_tiles()];
        self
    }

    /// Sets the context-memory size of one tile.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn cm_for(mut self, tile: TileId, words: usize) -> Self {
        self.cm_words[tile.0] = words;
        self
    }

    /// Sets the regular register file size for all tiles.
    pub fn rf_words(mut self, words: usize) -> Self {
        self.rf_words = words;
        self
    }

    /// Sets the constant register file size for all tiles.
    pub fn crf_words(mut self, words: usize) -> Self {
        self.crf_words = words;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// See [`CgraConfig::new`].
    pub fn build(self) -> Result<CgraConfig, ConfigError> {
        let cols = self.geometry.cols();
        let tiles = self
            .cm_words
            .iter()
            .enumerate()
            .map(|(i, &cm)| TileConfig {
                has_lsu: (i / cols) < self.lsu_rows,
                cm_words: cm,
                rf_words: self.rf_words,
                crf_words: self.crf_words,
            })
            .collect();
        CgraConfig::new(self.name, self.geometry, tiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_totals() {
        assert_eq!(CgraConfig::hom64().total_cm_words(), 1024);
        assert_eq!(CgraConfig::hom32().total_cm_words(), 512);
        assert_eq!(CgraConfig::het1().total_cm_words(), 576);
        assert_eq!(CgraConfig::het2().total_cm_words(), 512);
    }

    #[test]
    fn lsu_tiles_are_one_through_eight() {
        for cfg in CgraConfig::table_one() {
            let lsus = cfg.lsu_tiles();
            assert_eq!(lsus.len(), 8, "{}", cfg.name());
            for t in lsus {
                assert!(t.display_index() <= 8);
            }
        }
    }

    #[test]
    fn het1_cm_distribution() {
        let c = CgraConfig::het1();
        assert_eq!(c.tile(TileId(0)).cm_words, 64); // tile 1
        assert_eq!(c.tile(TileId(4)).cm_words, 32); // tile 5
        assert_eq!(c.tile(TileId(8)).cm_words, 16); // tile 9
        assert_eq!(c.tile(TileId(12)).cm_words, 32); // tile 13
    }

    #[test]
    fn het2_cm_distribution() {
        let c = CgraConfig::het2();
        assert_eq!(c.tile(TileId(3)).cm_words, 64); // tile 4
        assert_eq!(c.tile(TileId(7)).cm_words, 32); // tile 8
        assert_eq!(c.tile(TileId(8)).cm_words, 16); // tile 9
        assert_eq!(c.tile(TileId(15)).cm_words, 16); // tile 16
    }

    #[test]
    fn builder_validation_catches_missing_lsu() {
        let err = CgraConfig::builder(2, 2).lsu_rows(0).build().unwrap_err();
        assert_eq!(err, ConfigError::NoLoadStoreTile);
    }

    #[test]
    fn builder_validation_catches_empty_cm() {
        let err = CgraConfig::builder(2, 2)
            .cm_for(TileId(3), 0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptyContextMemory(TileId(3)));
    }

    #[test]
    fn builder_validation_catches_empty_register_files() {
        let err = CgraConfig::builder(2, 2).rf_words(0).build().unwrap_err();
        assert_eq!(err, ConfigError::EmptyRegisterFile(TileId(0)));
        let err = CgraConfig::builder(2, 2).crf_words(0).build().unwrap_err();
        assert_eq!(err, ConfigError::EmptyConstantRegisterFile(TileId(0)));
    }

    #[test]
    fn new_rejects_wrong_tile_count() {
        let err =
            CgraConfig::new("X", Geometry::new(2, 2), vec![TileConfig::load_store(8)]).unwrap_err();
        assert!(matches!(err, ConfigError::TileCountMismatch { .. }));
    }

    #[test]
    fn display_is_informative() {
        let s = CgraConfig::hom64().to_string();
        assert!(s.contains("HOM64"));
        assert!(s.contains("1024"));
    }
}
