//! Time-extended directed graph (TEDG) of Section III-A.
//!
//! The TEDG unrolls the CGRA's resources over cycles: every node is a
//! `(resource, cycle)` pair where the resource is either a tile's functional
//! unit (FU) or its register file (RF), and edges encode which resource can
//! feed which in the *next* cycle. A valid mapping of a data-flow graph is a
//! graph morphism into the TEDG: every DFG dependency must follow TEDG
//! edges (possibly through RF-hold chains and `move` operations).
//!
//! The mapper in `cmam-core` performs the reachability arithmetic directly
//! for speed, but this module materialises the TEDG explicitly so that the
//! formal object of the paper exists, can be inspected, and is used by the
//! test-suite to cross-check the mapper's feasibility rules.
//!
//! Timing model (shared with the simulator):
//! * an FU at cycle `c` reads operands from its own RF state *at the start
//!   of* `c`, or from a torus neighbour's RF state at the start of `c`;
//! * its result is written to the local RF at the end of `c`, usable from
//!   cycle `c + 1` on;
//! * RF contents persist cycle to cycle until overwritten.

use crate::geometry::Geometry;
use crate::tile::TileId;
use petgraph::graph::{DiGraph, NodeIndex};
use petgraph::visit::EdgeRef;
use std::collections::HashMap;
use std::fmt;

/// A resource at a given cycle — one TEDG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TedgNode {
    /// The functional unit of `tile` at `cycle`.
    Fu {
        /// Owning tile.
        tile: TileId,
        /// Cycle index within the unrolled window.
        cycle: usize,
    },
    /// The register file of `tile` at `cycle` (its state at the *start* of
    /// the cycle).
    Rf {
        /// Owning tile.
        tile: TileId,
        /// Cycle index within the unrolled window.
        cycle: usize,
    },
}

impl TedgNode {
    /// The tile owning the resource.
    pub fn tile(&self) -> TileId {
        match *self {
            TedgNode::Fu { tile, .. } | TedgNode::Rf { tile, .. } => tile,
        }
    }

    /// The cycle of the node.
    pub fn cycle(&self) -> usize {
        match *self {
            TedgNode::Fu { cycle, .. } | TedgNode::Rf { cycle, .. } => cycle,
        }
    }
}

impl fmt::Display for TedgNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TedgNode::Fu { tile, cycle } => write!(f, "FU({tile})@{cycle}"),
            TedgNode::Rf { tile, cycle } => write!(f, "RF({tile})@{cycle}"),
        }
    }
}

/// Kind of connection between two TEDG nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TedgEdge {
    /// FU result written into the local RF (usable next cycle).
    WriteBack,
    /// RF value persisting into the next cycle.
    Hold,
    /// FU operand read from the tile's own RF.
    LocalRead,
    /// FU operand read from a direct torus neighbour's RF.
    NeighborRead,
}

/// Materialised TEDG over a window of `cycles` cycles.
///
/// ```
/// use cmam_arch::{Geometry, Tedg, TileId};
/// let tedg = Tedg::unroll(Geometry::new(2, 2), 3);
/// // A value produced on tile 0 at cycle 0 can feed tile 1's FU at cycle 1.
/// assert!(tedg.value_can_flow(TileId(0), 0, TileId(1), 1));
/// // ...but never an FU two hops away: RF holds do not cross tiles, so
/// // covering distance > 1 requires explicit `move` instructions.
/// let far = Tedg::unroll(Geometry::new(4, 4), 4);
/// assert!(!far.value_can_flow(TileId(0), 0, TileId(2), 1));
/// assert!(!far.value_can_flow(TileId(0), 0, TileId(2), 3));
/// ```
#[derive(Debug, Clone)]
pub struct Tedg {
    geometry: Geometry,
    cycles: usize,
    graph: DiGraph<TedgNode, TedgEdge>,
    index: HashMap<TedgNode, NodeIndex>,
}

impl Tedg {
    /// Unrolls the resources of `geometry` over `cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn unroll(geometry: Geometry, cycles: usize) -> Self {
        assert!(cycles > 0, "TEDG window must cover at least one cycle");
        let mut graph = DiGraph::new();
        let mut index = HashMap::new();
        for c in 0..cycles {
            for t in geometry.tiles() {
                for node in [
                    TedgNode::Fu { tile: t, cycle: c },
                    TedgNode::Rf { tile: t, cycle: c },
                ] {
                    let ix = graph.add_node(node);
                    index.insert(node, ix);
                }
            }
        }
        let at = |index: &HashMap<TedgNode, NodeIndex>, n: TedgNode| index[&n];
        for c in 0..cycles {
            for t in geometry.tiles() {
                let fu = at(&index, TedgNode::Fu { tile: t, cycle: c });
                let rf = at(&index, TedgNode::Rf { tile: t, cycle: c });
                // Operand reads within cycle c.
                graph.add_edge(rf, fu, TedgEdge::LocalRead);
                for (_, n) in geometry.neighbors(t) {
                    let nrf = at(&index, TedgNode::Rf { tile: n, cycle: c });
                    graph.add_edge(nrf, fu, TedgEdge::NeighborRead);
                }
                if c + 1 < cycles {
                    let rf_next = at(
                        &index,
                        TedgNode::Rf {
                            tile: t,
                            cycle: c + 1,
                        },
                    );
                    graph.add_edge(fu, rf_next, TedgEdge::WriteBack);
                    graph.add_edge(rf, rf_next, TedgEdge::Hold);
                }
            }
        }
        Tedg {
            geometry,
            cycles,
            graph,
            index,
        }
    }

    /// The geometry the TEDG was unrolled from.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Number of unrolled cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Total node count (`2 * tiles * cycles`).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Looks up the petgraph index of a node, if it is inside the window.
    pub fn node(&self, node: TedgNode) -> Option<NodeIndex> {
        self.index.get(&node).copied()
    }

    /// Successor nodes of `node` together with the edge kinds.
    pub fn successors(&self, node: TedgNode) -> Vec<(TedgNode, TedgEdge)> {
        let Some(ix) = self.node(node) else {
            return Vec::new();
        };
        let mut out: Vec<(TedgNode, TedgEdge)> = self
            .graph
            .edges(ix)
            .map(|e| (self.graph[e.target()], *e.weight()))
            .collect();
        out.sort();
        out
    }

    /// Whether a value produced by the FU of `from` at cycle `from_cycle`
    /// can reach (through write-back, RF holds and RF-to-FU reads, without
    /// any extra `move` instruction) the FU of `to` as an operand at cycle
    /// `to_cycle`.
    ///
    /// This is exactly "the consumer's tile is the producer's tile or a
    /// direct neighbour, and at least one cycle has passed" — the rule the
    /// mapper uses; here it is answered by walking the materialised graph so
    /// tests can cross-check the two.
    pub fn value_can_flow(
        &self,
        from: TileId,
        from_cycle: usize,
        to: TileId,
        to_cycle: usize,
    ) -> bool {
        if to_cycle <= from_cycle || to_cycle >= self.cycles {
            return false;
        }
        // BFS from the write-back target RF(from, from_cycle+1).
        let start = TedgNode::Rf {
            tile: from,
            cycle: from_cycle + 1,
        };
        let goal = TedgNode::Fu {
            tile: to,
            cycle: to_cycle,
        };
        let Some(start_ix) = self.node(start) else {
            return false;
        };
        let Some(goal_ix) = self.node(goal) else {
            return false;
        };
        // Restrict the walk to Hold / LocalRead / NeighborRead edges: a
        // value sitting in an RF flows without executing any instruction.
        let mut stack = vec![start_ix];
        let mut seen = vec![false; self.graph.node_count()];
        seen[start_ix.index()] = true;
        while let Some(ix) = stack.pop() {
            if ix == goal_ix {
                return true;
            }
            for e in self.graph.edges(ix) {
                let ok = matches!(
                    e.weight(),
                    TedgEdge::Hold | TedgEdge::LocalRead | TedgEdge::NeighborRead
                );
                if ok && !seen[e.target().index()] {
                    seen[e.target().index()] = true;
                    stack.push(e.target());
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_edge_counts() {
        let g = Geometry::new(2, 2);
        let tedg = Tedg::unroll(g, 3);
        assert_eq!(tedg.node_count(), 2 * 4 * 3);
        // Per tile per cycle: 1 local read + deg neighbor reads, plus
        // write-back + hold for all but the last cycle. On 2x2 torus the
        // dedup'ed degree is 2.
        let per_cycle = 4 * (1 + 2);
        let transitions = 4 * 2;
        assert_eq!(tedg.edge_count(), per_cycle * 3 + transitions * 2);
    }

    #[test]
    fn same_tile_flow_needs_one_cycle() {
        let tedg = Tedg::unroll(Geometry::new(4, 4), 4);
        assert!(!tedg.value_can_flow(TileId(0), 0, TileId(0), 0));
        assert!(tedg.value_can_flow(TileId(0), 0, TileId(0), 1));
        assert!(tedg.value_can_flow(TileId(0), 0, TileId(0), 3));
    }

    #[test]
    fn neighbor_flow_needs_one_cycle() {
        let tedg = Tedg::unroll(Geometry::new(4, 4), 4);
        assert!(tedg.value_can_flow(TileId(0), 0, TileId(1), 1));
        assert!(tedg.value_can_flow(TileId(0), 0, TileId(12), 1)); // torus wrap
    }

    #[test]
    fn distant_flow_is_impossible_without_moves() {
        let tedg = Tedg::unroll(Geometry::new(4, 4), 6);
        // Tile 10 is 4 hops from tile 0: without moves the value never
        // reaches it, no matter how many cycles pass (RF holds do not
        // propagate across tiles).
        assert!(!tedg.value_can_flow(TileId(0), 0, TileId(10), 5));
        // But a 2-hop tile is also unreachable: neighbour reads only span
        // one hop.
        assert!(!tedg.value_can_flow(TileId(0), 0, TileId(2), 5));
    }

    #[test]
    fn flow_respects_window_bounds() {
        let tedg = Tedg::unroll(Geometry::new(2, 2), 2);
        assert!(!tedg.value_can_flow(TileId(0), 1, TileId(0), 2));
    }

    #[test]
    fn successors_of_fu_contain_writeback() {
        let tedg = Tedg::unroll(Geometry::new(2, 2), 2);
        let succ = tedg.successors(TedgNode::Fu {
            tile: TileId(0),
            cycle: 0,
        });
        assert!(succ
            .iter()
            .any(|(n, e)| *e == TedgEdge::WriteBack && n.tile() == TileId(0) && n.cycle() == 1));
    }
}
