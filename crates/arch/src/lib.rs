//! # cmam-arch — CGRA architecture model
//!
//! Models the target CGRA of the paper: a grid of tiles (processing
//! elements) interconnected through a 2D-mesh **torus** network. Each tile
//! contains an ALU, a regular register file (RRF), a constant register file
//! (CRF) and its own **context memory** (CM) holding the instructions the
//! tile executes. Some tiles additionally contain a load/store unit (LSU)
//! connected to the shared data memory (TCDM) through a logarithmic
//! interconnect.
//!
//! The crate provides:
//!
//! * [`Geometry`] — torus topology, neighbourhood and hop distances;
//! * [`TileConfig`] / [`CgraConfig`] — per-tile resources and the four
//!   context-memory configurations of Table I (`HOM64`, `HOM32`, `HET1`,
//!   `HET2`);
//! * [`tedg`] — the time-extended directed graph (TEDG) of Section III-A,
//!   the resource/time target graph mappings are expressed against.
//!
//! ```
//! use cmam_arch::{CgraConfig, TileId};
//!
//! let het1 = CgraConfig::het1();
//! assert_eq!(het1.total_cm_words(), 576); // Table I
//! assert!(het1.tile(TileId(0)).has_lsu);
//! assert_eq!(het1.tile(TileId(9)).cm_words, 16);
//! ```

pub mod config;
pub mod geometry;
pub mod tedg;
pub mod tile;

pub use config::{CgraConfig, CgraConfigBuilder, ConfigError};
pub use geometry::{Direction, Geometry, Pos};
pub use tedg::{Tedg, TedgEdge, TedgNode};
pub use tile::{TileClass, TileConfig, TileId};
