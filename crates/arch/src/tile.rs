//! Per-tile resources: ALU, register files, context memory, optional LSU.

use std::fmt;

/// Identifier of a tile (processing element). 0-based, row-major.
///
/// The paper numbers tiles 1..=16; [`TileId::display_index`] gives that
/// 1-based number for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TileId(pub usize);

impl TileId {
    /// 1-based index as used in the paper's figures and Table I.
    pub fn display_index(self) -> usize {
        self.0 + 1
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.display_index())
    }
}

/// Broad classification of a tile used in reports (Table I groups tiles by
/// their context-memory size and LSU capability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileClass {
    /// Tile with a load/store unit attached to the data-memory interconnect.
    LoadStore,
    /// Compute-only tile.
    Compute,
}

impl fmt::Display for TileClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileClass::LoadStore => f.write_str("load-store"),
            TileClass::Compute => f.write_str("compute"),
        }
    }
}

/// Static resources of one tile.
///
/// Defaults follow the experimental setup of Section IV-C: a regular
/// register file of 8 words, a constant register file of 16 words, and a
/// 64-word context memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileConfig {
    /// Whether the tile has a load/store unit (can execute `load`/`store`).
    pub has_lsu: bool,
    /// Context-memory capacity in instruction words.
    pub cm_words: usize,
    /// Regular register file capacity in words (live values).
    pub rf_words: usize,
    /// Constant register file capacity in words (immediates).
    pub crf_words: usize,
}

impl TileConfig {
    /// A compute tile with the given context-memory size and default
    /// register files (RRF 8 words, CRF 16 words).
    pub fn compute(cm_words: usize) -> Self {
        TileConfig {
            has_lsu: false,
            cm_words,
            rf_words: 8,
            crf_words: 16,
        }
    }

    /// A load/store tile with the given context-memory size.
    pub fn load_store(cm_words: usize) -> Self {
        TileConfig {
            has_lsu: true,
            ..TileConfig::compute(cm_words)
        }
    }

    /// The tile's class for reporting.
    pub fn class(&self) -> TileClass {
        if self.has_lsu {
            TileClass::LoadStore
        } else {
            TileClass::Compute
        }
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig::compute(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_index_is_one_based() {
        assert_eq!(TileId(0).display_index(), 1);
        assert_eq!(TileId(15).display_index(), 16);
        assert_eq!(TileId(7).to_string(), "T8");
    }

    #[test]
    fn constructors_set_class() {
        assert_eq!(TileConfig::compute(32).class(), TileClass::Compute);
        assert_eq!(TileConfig::load_store(64).class(), TileClass::LoadStore);
    }

    #[test]
    fn default_matches_paper_setup() {
        let t = TileConfig::default();
        assert_eq!(t.cm_words, 64);
        assert_eq!(t.rf_words, 8);
        assert_eq!(t.crf_words, 16);
        assert!(!t.has_lsu);
    }
}
